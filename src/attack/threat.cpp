#include "attack/threat.h"

#include <stdexcept>

namespace divsec::attack {

namespace {

void check_rate(double r, const char* what, const std::string& name) {
  if (!(r > 0.0))
    throw std::invalid_argument(name + ": " + what + " must be > 0");
}

}  // namespace

void ThreatProfile::validate() const {
  if (name.empty()) throw std::invalid_argument("ThreatProfile: empty name");
  if (channels.empty())
    throw std::invalid_argument(name + ": needs at least one channel");
  check_rate(entry_rate, "entry_rate", name);
  check_rate(activation_rate, "activation_rate", name);
  check_rate(privesc_rate, "privesc_rate", name);
  check_rate(propagation_rate, "propagation_rate", name);
  check_rate(payload_rate, "payload_rate", name);
  check_rate(sabotage_mean_hours, "sabotage_mean_hours", name);
  if (stealth < 0.0 || stealth >= 1.0)
    throw std::invalid_argument(name + ": stealth must be in [0,1)");
  if (spoof_effectiveness < 0.0 || spoof_effectiveness > 1.0)
    throw std::invalid_argument(name + ": spoof_effectiveness must be in [0,1]");
}

void DetectionModel::validate() const {
  if (host_detection_rate < 0.0 || alarm_detection_rate < 0.0)
    throw std::invalid_argument("DetectionModel: rates must be >= 0");
  if (failed_attempt_detection < 0.0 || failed_attempt_detection > 1.0)
    throw std::invalid_argument(
        "DetectionModel: failed_attempt_detection must be in [0,1]");
}

ThreatProfile ThreatProfile::stuxnet() {
  using divers::ComponentKind;
  ThreatProfile p;
  p.name = "stuxnet";
  p.channels = {net::Channel::kUsb, net::Channel::kSmbShare,
                net::Channel::kPrintSpooler, net::Channel::kProjectFile};
  // Zero-days developed against the legacy Windows build (dev_variant 0).
  p.activation_exploit = {"stuxnet.lnk", ComponentKind::kOs, 110, /*zero_day=*/true,
                          /*dev_variant=*/0, /*base_success=*/0.9};
  p.privesc_exploit = {"stuxnet.keyboard-layout", ComponentKind::kOs, 111, true, 0, 0.8};
  p.lateral_exploit = {"stuxnet.spooler", ComponentKind::kOs, 101, /*zero_day=*/false,
                       0, 0.7};
  p.firewall_exploit = {"stuxnet.fw-tunnel", ComponentKind::kFirewallFirmware, 501,
                        false, 0, 0.3};
  // The PLC reprogramming and s7comm abuse exploit *legitimate*
  // functionality (no patch exists): modelled as zero-days, so only code
  // diversity (gadget survival) and hardening degrade them.
  p.protocol_exploit = {"stuxnet.s7comm", ComponentKind::kProtocolStack, 301,
                        /*zero_day=*/true, 0, 0.6};
  p.plc_exploit = {"stuxnet.plc-rootkit", ComponentKind::kPlcFirmware, 201,
                   /*zero_day=*/true, 0, 0.85};
  p.hmi_exploit = {"stuxnet.wincc-db", ComponentKind::kHmiSoftware, 401, false, 0, 0.7};
  p.has_sabotage_payload = true;
  p.entry_rate = 1.0 / 72.0;
  p.activation_rate = 0.5;
  p.privesc_rate = 0.25;
  p.propagation_rate = 0.2;
  p.payload_rate = 0.15;
  p.sabotage_mean_hours = 500.0;  // grind the device down over ~3 weeks
  p.stealth = 0.95;
  p.spoof_effectiveness = 0.99;   // full replay of recorded sensor values
  p.validate();
  return p;
}

ThreatProfile ThreatProfile::duqu() {
  using divers::ComponentKind;
  ThreatProfile p = stuxnet();
  p.name = "duqu";
  // Espionage: recon toolkit, no sabotage payload, even quieter.
  p.channels = {net::Channel::kUsb, net::Channel::kSmbShare, net::Channel::kHttp};
  p.activation_exploit = {"duqu.ttf", ComponentKind::kOs, 112, true, 0, 0.85};
  p.privesc_exploit = {"duqu.privesc", ComponentKind::kOs, 113, true, 0, 0.7};
  p.lateral_exploit = {"duqu.smb", ComponentKind::kOs, 102, false, 0, 0.5};
  p.plc_exploit = {"duqu.none", ComponentKind::kPlcFirmware, 299, false, 0, 0.0};
  p.has_sabotage_payload = false;
  p.propagation_rate = 0.1;
  p.stealth = 0.95;
  p.spoof_effectiveness = 0.0;
  p.validate();
  return p;
}

ThreatProfile ThreatProfile::flame() {
  using divers::ComponentKind;
  ThreatProfile p = stuxnet();
  p.name = "flame";
  // Broad espionage: aggressive spreading, bigger footprint, less stealth.
  p.channels = {net::Channel::kUsb, net::Channel::kSmbShare,
                net::Channel::kPrintSpooler, net::Channel::kHttp};
  p.activation_exploit = {"flame.msi-collision", ComponentKind::kOs, 114, true, 0, 0.8};
  p.privesc_exploit = {"flame.privesc", ComponentKind::kOs, 103, false, 0, 0.6};
  p.lateral_exploit = {"flame.wpad", ComponentKind::kOs, 104, false, 0, 0.65};
  p.plc_exploit = {"flame.none", ComponentKind::kPlcFirmware, 299, false, 0, 0.0};
  p.has_sabotage_payload = false;
  p.propagation_rate = 0.35;
  p.payload_rate = 0.05;
  p.stealth = 0.7;  // ~20MB of modules: noisier
  p.spoof_effectiveness = 0.0;
  p.validate();
  return p;
}

}  // namespace divsec::attack
