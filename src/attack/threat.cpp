#include "attack/threat.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace divsec::attack {

namespace {

void check_rate(double r, const char* what, const std::string& name) {
  if (!(r > 0.0))
    throw std::invalid_argument(name + ": " + what + " must be > 0");
}

struct ChannelToken {
  const char* token;
  net::Channel channel;
};

constexpr ChannelToken kChannelTokens[net::kChannelCount] = {
    {"usb", net::Channel::kUsb},
    {"smb", net::Channel::kSmbShare},
    {"spooler", net::Channel::kPrintSpooler},
    {"project", net::Channel::kProjectFile},
    {"modbus", net::Channel::kModbus},
    {"http", net::Channel::kHttp},
};

std::string joined_channel_tokens() {
  std::string out;
  for (std::size_t i = 0; i < net::kChannelCount; ++i) {
    if (i) out += ", ";
    out += kChannelTokens[i].token;
  }
  return out;
}

std::string joined_threat_names() {
  std::string out;
  const auto names = threat_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) out += ", ";
    out += names[i];
  }
  return out;
}

const char* channel_token(net::Channel c) {
  for (const ChannelToken& t : kChannelTokens)
    if (t.channel == c) return t.token;
  return "?";
}

/// Shortest decimal string that round-trips to exactly `v` (canonical
/// specs are sweep-fingerprint material; same rule as FamilySpec).
std::string format_double(double v) {
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

double parse_threat_double(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const double v = text.empty() ? 0.0 : std::strtod(text.c_str(), &end);
  if (text.empty() || end == nullptr || *end != '\0')
    throw std::invalid_argument("ThreatTuning: parameter '" + key +
                                "' needs a number, got '" + text + "'");
  return v;
}

std::vector<net::Channel> parse_channel_list(const std::string& text) {
  std::vector<net::Channel> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t plus = text.find('+', pos);
    const std::string token = text.substr(
        pos, plus == std::string::npos ? std::string::npos : plus - pos);
    bool found = false;
    for (const ChannelToken& t : kChannelTokens) {
      if (token == t.token) {
        out.push_back(t.channel);
        found = true;
        break;
      }
    }
    if (!found)
      throw std::invalid_argument("ThreatTuning: unknown channel '" + token +
                                  "' (channels: " + joined_channel_tokens() + ")");
    if (plus == std::string::npos) break;
    pos = plus + 1;
  }
  if (out.empty())
    throw std::invalid_argument("ThreatTuning: channels override must name >= 1");
  return out;
}

}  // namespace

std::vector<std::string> threat_names() { return {"stuxnet", "duqu", "flame"}; }

ThreatTuning ThreatTuning::parse(const std::string& spec) {
  ThreatTuning t;
  const std::size_t colon = spec.find(':');
  t.base = colon == std::string::npos ? spec : spec.substr(0, colon);

  bool known_base = false;
  for (const std::string& n : threat_names()) known_base |= t.base == n;
  if (!known_base)
    throw std::invalid_argument("ThreatTuning: unknown threat '" + t.base +
                                "' (threats: " + joined_threat_names() + ")");

  if (colon != std::string::npos) {
    const std::string params = spec.substr(colon + 1);
    std::size_t pos = 0;
    while (pos <= params.size()) {
      const std::size_t comma = params.find(',', pos);
      const std::string item = params.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      if (!item.empty()) {
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
          throw std::invalid_argument(
              "ThreatTuning: expected key=value, got '" + item + "'");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "channels") {
          t.channels = parse_channel_list(value);
        } else if (key == "stealth") {
          const double v = parse_threat_double(key, value);
          if (v < 0.0 || v >= 1.0)
            throw std::invalid_argument(
                "ThreatTuning: stealth must be in [0,1), got " + value);
          t.stealth = v;
        } else {
          const double v = parse_threat_double(key, value);
          if (!(v > 0.0))
            throw std::invalid_argument("ThreatTuning: parameter '" + key +
                                        "' must be > 0, got " + value);
          if (key == "scan") t.scan = v;
          else if (key == "entry") t.entry = v;
          else if (key == "payload") t.payload = v;
          else if (key == "dwell") t.dwell = v;
          else
            throw std::invalid_argument(
                "ThreatTuning: unknown parameter '" + key +
                "' (known: scan, entry, payload, dwell, stealth, channels)");
        }
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  return t;
}

std::string ThreatTuning::canonical() const {
  std::string out = base;
  std::string params;
  const auto add = [&params](const std::string& kv) {
    if (!params.empty()) params += ",";
    params += kv;
  };
  if (scan != 1.0) add("scan=" + format_double(scan));
  if (entry != 1.0) add("entry=" + format_double(entry));
  if (payload != 1.0) add("payload=" + format_double(payload));
  if (dwell != 1.0) add("dwell=" + format_double(dwell));
  if (stealth) add("stealth=" + format_double(*stealth));
  if (channels) {
    std::string list;
    for (net::Channel c : *channels) {
      if (!list.empty()) list += "+";
      list += channel_token(c);
    }
    add("channels=" + list);
  }
  if (!params.empty()) out += ":" + params;
  return out;
}

ThreatProfile ThreatTuning::profile() const {
  ThreatProfile p;
  if (base == "stuxnet") p = ThreatProfile::stuxnet();
  else if (base == "duqu") p = ThreatProfile::duqu();
  else if (base == "flame") p = ThreatProfile::flame();
  else
    throw std::invalid_argument("ThreatTuning: unknown threat '" + base +
                                "' (threats: " + joined_threat_names() + ")");
  p.propagation_rate *= scan;
  p.entry_rate *= entry;
  p.payload_rate *= payload;
  p.sabotage_mean_hours *= dwell;
  if (stealth) p.stealth = *stealth;
  if (channels) p.channels = *channels;
  p.name = canonical();
  p.validate();
  return p;
}

std::string canonical_threat_spec(const std::string& spec) {
  return ThreatTuning::parse(spec).canonical();
}

ThreatProfile threat_profile_from_spec(const std::string& spec) {
  return ThreatTuning::parse(spec).profile();
}

void ThreatProfile::validate() const {
  if (name.empty()) throw std::invalid_argument("ThreatProfile: empty name");
  if (channels.empty())
    throw std::invalid_argument(name + ": needs at least one channel");
  check_rate(entry_rate, "entry_rate", name);
  check_rate(activation_rate, "activation_rate", name);
  check_rate(privesc_rate, "privesc_rate", name);
  check_rate(propagation_rate, "propagation_rate", name);
  check_rate(payload_rate, "payload_rate", name);
  check_rate(sabotage_mean_hours, "sabotage_mean_hours", name);
  if (stealth < 0.0 || stealth >= 1.0)
    throw std::invalid_argument(name + ": stealth must be in [0,1)");
  if (spoof_effectiveness < 0.0 || spoof_effectiveness > 1.0)
    throw std::invalid_argument(name + ": spoof_effectiveness must be in [0,1]");
}

void DetectionModel::validate() const {
  if (host_detection_rate < 0.0 || alarm_detection_rate < 0.0)
    throw std::invalid_argument("DetectionModel: rates must be >= 0");
  if (failed_attempt_detection < 0.0 || failed_attempt_detection > 1.0)
    throw std::invalid_argument(
        "DetectionModel: failed_attempt_detection must be in [0,1]");
}

ThreatProfile ThreatProfile::stuxnet() {
  using divers::ComponentKind;
  ThreatProfile p;
  p.name = "stuxnet";
  p.channels = {net::Channel::kUsb, net::Channel::kSmbShare,
                net::Channel::kPrintSpooler, net::Channel::kProjectFile};
  // Zero-days developed against the legacy Windows build (dev_variant 0).
  p.activation_exploit = {"stuxnet.lnk", ComponentKind::kOs, 110, /*zero_day=*/true,
                          /*dev_variant=*/0, /*base_success=*/0.9};
  p.privesc_exploit = {"stuxnet.keyboard-layout", ComponentKind::kOs, 111, true, 0, 0.8};
  p.lateral_exploit = {"stuxnet.spooler", ComponentKind::kOs, 101, /*zero_day=*/false,
                       0, 0.7};
  p.firewall_exploit = {"stuxnet.fw-tunnel", ComponentKind::kFirewallFirmware, 501,
                        false, 0, 0.3};
  // The PLC reprogramming and s7comm abuse exploit *legitimate*
  // functionality (no patch exists): modelled as zero-days, so only code
  // diversity (gadget survival) and hardening degrade them.
  p.protocol_exploit = {"stuxnet.s7comm", ComponentKind::kProtocolStack, 301,
                        /*zero_day=*/true, 0, 0.6};
  p.plc_exploit = {"stuxnet.plc-rootkit", ComponentKind::kPlcFirmware, 201,
                   /*zero_day=*/true, 0, 0.85};
  p.hmi_exploit = {"stuxnet.wincc-db", ComponentKind::kHmiSoftware, 401, false, 0, 0.7};
  p.has_sabotage_payload = true;
  p.entry_rate = 1.0 / 72.0;
  p.activation_rate = 0.5;
  p.privesc_rate = 0.25;
  p.propagation_rate = 0.2;
  p.payload_rate = 0.15;
  p.sabotage_mean_hours = 500.0;  // grind the device down over ~3 weeks
  p.stealth = 0.95;
  p.spoof_effectiveness = 0.99;   // full replay of recorded sensor values
  p.validate();
  return p;
}

ThreatProfile ThreatProfile::duqu() {
  using divers::ComponentKind;
  ThreatProfile p = stuxnet();
  p.name = "duqu";
  // Espionage: recon toolkit, no sabotage payload, even quieter.
  p.channels = {net::Channel::kUsb, net::Channel::kSmbShare, net::Channel::kHttp};
  p.activation_exploit = {"duqu.ttf", ComponentKind::kOs, 112, true, 0, 0.85};
  p.privesc_exploit = {"duqu.privesc", ComponentKind::kOs, 113, true, 0, 0.7};
  p.lateral_exploit = {"duqu.smb", ComponentKind::kOs, 102, false, 0, 0.5};
  p.plc_exploit = {"duqu.none", ComponentKind::kPlcFirmware, 299, false, 0, 0.0};
  p.has_sabotage_payload = false;
  p.propagation_rate = 0.1;
  p.stealth = 0.95;
  p.spoof_effectiveness = 0.0;
  p.validate();
  return p;
}

ThreatProfile ThreatProfile::flame() {
  using divers::ComponentKind;
  ThreatProfile p = stuxnet();
  p.name = "flame";
  // Broad espionage: aggressive spreading, bigger footprint, less stealth.
  p.channels = {net::Channel::kUsb, net::Channel::kSmbShare,
                net::Channel::kPrintSpooler, net::Channel::kHttp};
  p.activation_exploit = {"flame.msi-collision", ComponentKind::kOs, 114, true, 0, 0.8};
  p.privesc_exploit = {"flame.privesc", ComponentKind::kOs, 103, false, 0, 0.6};
  p.lateral_exploit = {"flame.wpad", ComponentKind::kOs, 104, false, 0, 0.65};
  p.plc_exploit = {"flame.none", ComponentKind::kPlcFirmware, 299, false, 0, 0.0};
  p.has_sabotage_payload = false;
  p.propagation_rate = 0.35;
  p.payload_rate = 0.05;
  p.stealth = 0.7;  // ~20MB of modules: noisier
  p.spoof_effectiveness = 0.0;
  p.validate();
  return p;
}

}  // namespace divsec::attack
