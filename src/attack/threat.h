// threat.h — parameterized threat profiles (Stuxnet, Duqu, Flame).
//
// The paper grounds its attack model in Stuxnet and names Duqu and Flame
// as the wider threat set of its future work. A ThreatProfile bundles the
// attacker's toolkit (exploits per component kind), propagation channels,
// per-stage attempt rates, stealth, and — Stuxnet's signature move —
// monitoring-signal spoofing effectiveness. Time unit: hours.
//
// Threat *specs* make the profile a sweep axis: "stuxnet" names the
// canonical profile, "stuxnet:scan=2,dwell=0.5,channels=usb+http" tunes
// it — tempo multipliers, a stealth override, a channel-set override —
// deterministically from the string alone. canonical_threat_spec
// renders one spelling per tuning (default parameters are omitted, so
// "stuxnet:scan=1" and "stuxnet" fingerprint identically in the sweep
// layer).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "divers/variants.h"
#include "net/topology.h"

namespace divsec::attack {

struct ThreatProfile {
  std::string name;

  /// Channels the malware can propagate over.
  std::vector<net::Channel> channels;

  // --- Toolkit ------------------------------------------------------------
  divers::Exploit activation_exploit;  // user-level code execution (OS)
  divers::Exploit privesc_exploit;     // privilege escalation (OS)
  divers::Exploit lateral_exploit;     // remote exploitation of peers (OS)
  divers::Exploit firewall_exploit;    // bypass of a blocking firewall
  divers::Exploit protocol_exploit;    // fieldbus stack abuse
  divers::Exploit plc_exploit;         // PLC reprogramming payload
  divers::Exploit hmi_exploit;         // HMI compromise (view spoofing)

  /// Whether the profile carries a physical-sabotage payload at all
  /// (espionage campaigns don't).
  bool has_sabotage_payload = true;

  // --- Tempo (attempts per hour) -------------------------------------------
  double entry_rate = 1.0 / 72.0;       // initial delivery opportunities
  double activation_rate = 0.5;
  double privesc_rate = 0.25;
  double propagation_rate = 0.2;        // per compromised node
  double payload_rate = 0.1;            // PLC payload delivery attempts
  double sabotage_mean_hours = 720.0;   // slow physical damage development

  // --- Stealth ---------------------------------------------------------------
  /// Reduces host-side detection: effective host detection rate is
  /// base * (1 - stealth).
  double stealth = 0.5;
  /// Stuxnet-style replay of regular monitoring signals: reduces
  /// alarm-channel detection during impairment by this factor.
  double spoof_effectiveness = 0.0;

  void validate() const;

  // Canonical profiles. `catalog_seed` only matters in that exploits
  // reference development-variant indices of VariantCatalog::standard.
  [[nodiscard]] static ThreatProfile stuxnet();
  [[nodiscard]] static ThreatProfile duqu();
  [[nodiscard]] static ThreatProfile flame();
};

/// The base profile names ("stuxnet", "duqu", "flame") — what error
/// listings and --help print.
[[nodiscard]] std::vector<std::string> threat_names();

/// One tuned point on the threat-model axis: multiplicative tempo knobs
/// over a named base profile plus optional absolute overrides. The
/// identity tuning (all 1.0, no overrides) is the base profile itself.
struct ThreatTuning {
  std::string base;            // a threat_names() entry
  double scan = 1.0;           // × propagation_rate (worm scan tempo)
  double entry = 1.0;          // × entry_rate (delivery opportunities)
  double payload = 1.0;        // × payload_rate (PLC payload attempts)
  double dwell = 1.0;          // × sabotage_mean_hours (patience)
  std::optional<double> stealth;  // absolute override, [0,1)
  /// Channel-set override ("channels=usb+http"): multi-channel entry /
  /// propagation experiments. Tokens: usb, smb, spooler, project,
  /// modbus, http.
  std::optional<std::vector<net::Channel>> channels;

  /// Parse "BASE[:k=v,...]" (k in scan, entry, payload, dwell, stealth,
  /// channels). Throws std::invalid_argument listing bases / keys /
  /// channel tokens on anything unknown or out of range.
  [[nodiscard]] static ThreatTuning parse(const std::string& spec);

  /// One spelling per tuning: base name, then only the non-default
  /// parameters in fixed order (scan, entry, payload, dwell, stealth,
  /// channels).
  [[nodiscard]] std::string canonical() const;

  /// The tuned profile; its name is the canonical spec. Revalidated, so
  /// a tuning that drives a rate to a nonsensical value throws here.
  [[nodiscard]] ThreatProfile profile() const;
};

/// canonical(parse(spec)) — the sweep layer's one-line normalizer.
[[nodiscard]] std::string canonical_threat_spec(const std::string& spec);

/// parse(spec).profile() — the sweep layer's one-line expander.
[[nodiscard]] ThreatProfile threat_profile_from_spec(const std::string& spec);

/// Base (undefended) detection rates of the monitored system; the
/// campaign and SAN builders combine these with a profile's stealth.
struct DetectionModel {
  /// Undefended host-IDS detections per active compromised node per hour
  /// (mean ~10 days per node; APT-grade stealth divides this further).
  double host_detection_rate = 0.004;
  /// Plant-alarm detections per hour while sabotage is underway,
  /// before monitoring-spoofing suppression.
  double alarm_detection_rate = 0.1;
  /// Probability that one *failed* exploitation attempt trips defenses
  /// (crash reports, AV signatures, IDS). Unlike resident-malware
  /// detection this is NOT discounted by stealth — a crashed service is
  /// noisy no matter how quiet the implant is. This is the mechanism that
  /// makes diversity costly for the attacker: exploits that do not port
  /// cleanly burn attempts, and attempts burn cover.
  double failed_attempt_detection = 0.08;
  void validate() const;
};

}  // namespace divsec::attack
