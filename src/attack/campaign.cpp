#include "attack/campaign.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "net/reachability_index.h"

namespace divsec::attack {

using divers::ComponentKind;
using net::NodeId;

void Scenario::validate(const divers::VariantCatalog& catalog) const {
  if (software.size() != topology.node_count())
    throw std::invalid_argument("Scenario: software size != node count");
  if (entry_nodes.empty()) throw std::invalid_argument("Scenario: no entry nodes");
  if (firewall_variant >= catalog.count(ComponentKind::kFirewallFirmware))
    throw std::out_of_range("Scenario: firewall variant out of range");
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    const auto& sw = software[n];
    if (sw.os >= catalog.count(ComponentKind::kOs))
      throw std::out_of_range("Scenario: OS variant out of range");
    if (sw.protocol >= catalog.count(ComponentKind::kProtocolStack))
      throw std::out_of_range("Scenario: protocol variant out of range");
    if (sw.plc_firmware &&
        *sw.plc_firmware >= catalog.count(ComponentKind::kPlcFirmware))
      throw std::out_of_range("Scenario: PLC firmware variant out of range");
    if (sw.hmi && *sw.hmi >= catalog.count(ComponentKind::kHmiSoftware))
      throw std::out_of_range("Scenario: HMI variant out of range");
    if (sw.historian && *sw.historian >= catalog.count(ComponentKind::kHistorianDb))
      throw std::out_of_range("Scenario: historian variant out of range");
    if (topology.node(n).role == net::Role::kPlc && !sw.plc_firmware)
      throw std::invalid_argument("Scenario: PLC node without firmware variant");
  }
  for (NodeId n : entry_nodes)
    if (n >= topology.node_count())
      throw std::out_of_range("Scenario: entry node out of range");
  for (NodeId n : target_plcs) {
    if (n >= topology.node_count())
      throw std::out_of_range("Scenario: target PLC out of range");
    if (topology.node(n).role != net::Role::kPlc)
      throw std::invalid_argument("Scenario: sabotage target is not a PLC");
  }
}

const char* to_string(CampaignEventKind k) noexcept {
  switch (k) {
    case CampaignEventKind::kDelivered: return "delivered";
    case CampaignEventKind::kDeliveredLateral: return "delivered-lateral";
    case CampaignEventKind::kActivated: return "activated";
    case CampaignEventKind::kRoot: return "root";
    case CampaignEventKind::kPlcCompromised: return "plc-compromised";
    case CampaignEventKind::kDeviceImpaired: return "device-impaired";
    case CampaignEventKind::kFailedExploitDetected: return "failed-exploit-detected";
    case CampaignEventKind::kHostIdsDetection: return "host-ids-detection";
    case CampaignEventKind::kPlantAlarmDetection: return "plant-alarm-detection";
  }
  return "?";
}

double CampaignResult::ratio_at(double t) const noexcept {
  // The step curve is sorted by time: binary-search the first step past t
  // (mean_ratio_curve calls this per grid point per replication — a
  // linear scan over a fleet-sized curve was the hot spot).
  const auto it = std::upper_bound(
      compromised_ratio.begin(), compromised_ratio.end(), t,
      [](double value, const std::pair<double, double>& step) {
        return value < step.first;
      });
  return it == compromised_ratio.begin() ? 0.0 : std::prev(it)->second;
}

/// Everything run() reads per event, precomputed once per scenario into
/// flat arrays indexed by NodeId. Deeply immutable after construction:
/// concurrent replications share one Tables instance read-only.
struct CampaignTables {
  net::ReachabilityIndex reach;

  std::size_t node_count = 0;

  // Role-derived flags.
  std::vector<std::uint8_t> is_plc;           // counts only when owned
  std::vector<std::uint8_t> host_target;      // valid lateral victims
  std::vector<std::uint8_t> monitoring_view;  // HMI / SCADA / engineering
  std::vector<std::uint8_t> payload_source;   // can push a PLC payload

  // Exploit tables: per-session success probability and exponential
  // delay rate per node (the VariantCatalog walk, paid once).
  std::vector<double> activation_p, activation_rate;
  std::vector<double> privesc_p, privesc_rate;
  std::vector<double> lateral_p;
  std::vector<double> plc_direct_p;  // project-file route
  std::vector<double> plc_modbus_p;  // fieldbus route (x protocol stack)
  double firewall_bypass_p = 0.0;
  double host_detection_rate = 0.0;  // stealth-discounted

  CampaignTables(const Scenario& sc, const ThreatProfile& pr,
                 const divers::VariantCatalog& cat, const DetectionModel& det)
      : reach(sc.topology, sc.firewall), node_count(sc.topology.node_count()) {
    const std::size_t n = node_count;
    is_plc.assign(n, 0);
    host_target.assign(n, 0);
    monitoring_view.assign(n, 0);
    payload_source.assign(n, 0);
    activation_p.resize(n);
    activation_rate.resize(n);
    privesc_p.resize(n);
    privesc_rate.resize(n);
    lateral_p.resize(n);
    plc_direct_p.assign(n, 0.0);
    plc_modbus_p.assign(n, 0.0);
    for (NodeId i = 0; i < n; ++i) {
      const net::Role role = sc.topology.node(i).role;
      is_plc[i] = role == net::Role::kPlc;
      host_target[i] =
          role != net::Role::kPlc && role != net::Role::kSensorGateway;
      monitoring_view[i] = role == net::Role::kHmi ||
                           role == net::Role::kScadaServer ||
                           role == net::Role::kEngineering;
      payload_source[i] =
          pr.has_sabotage_payload && (role == net::Role::kEngineering ||
                                      role == net::Role::kScadaServer);
      const std::size_t os = sc.software[i].os;
      activation_p[i] = cat.exploit_success(pr.activation_exploit, os);
      activation_rate[i] =
          pr.activation_rate / cat.exploit_work_factor(pr.activation_exploit, os);
      privesc_p[i] = cat.exploit_success(pr.privesc_exploit, os);
      privesc_rate[i] =
          pr.privesc_rate / cat.exploit_work_factor(pr.privesc_exploit, os);
      lateral_p[i] = cat.exploit_success(pr.lateral_exploit, os);
    }
    for (NodeId plc : sc.target_plcs) {
      plc_direct_p[plc] =
          cat.exploit_success(pr.plc_exploit, *sc.software[plc].plc_firmware);
      // The fieldbus route also has to abuse the protocol stack.
      plc_modbus_p[plc] =
          plc_direct_p[plc] *
          cat.exploit_success(pr.protocol_exploit, sc.software[plc].protocol);
    }
    firewall_bypass_p = cat.exploit_success(pr.firewall_exploit, sc.firewall_variant);
    host_detection_rate = det.host_detection_rate * (1.0 - pr.stealth);
  }
};

CampaignSimulator::CampaignSimulator(Scenario scenario, ThreatProfile profile,
                                     const divers::VariantCatalog& catalog,
                                     DetectionModel detection, CampaignOptions options)
    : scenario_(std::move(scenario)),
      profile_(std::move(profile)),
      catalog_(catalog),
      detection_(detection),
      options_(options) {
  profile_.validate();
  detection_.validate();
  scenario_.validate(catalog_);
  if (!(options_.t_max_hours > 0.0))
    throw std::invalid_argument("CampaignOptions: t_max_hours must be > 0");
  tables_ = std::make_unique<const CampaignTables>(scenario_, profile_, catalog_, detection_);
}

CampaignSimulator::~CampaignSimulator() = default;
CampaignSimulator::CampaignSimulator(CampaignSimulator&&) noexcept = default;

const net::ReachabilityIndex& CampaignSimulator::reachability() const noexcept {
  return tables_->reach;
}

namespace {

/// The campaign's stochastic processes are superposed Poisson streams,
/// and the engine schedules them as such instead of keeping one pending
/// event per node in a shared queue (what the generic sim::Simulator
/// forced). Per class:
///
///  * worm scanning   — every root scans at rate lambda_p; the
///    superposition is one aggregate process of rate lambda_p * R(t)
///    whose firing owner is uniform over the R roots (exponential race);
///  * payload pushes  — rate lambda_pl * S(t) over rooted
///    engineering/SCADA sources, same construction;
///  * host IDS        — each activated node is detected after an
///    exponential delay; only the FIRST detection matters, and before it
///    the hazard is rate_h * A(t) — one aggregate first-passage process;
///  * plant alarms    — one poll chain per owned PLC in the old model,
///    i.e. rate_a * P(t) aggregated, thinned by the current spoofing;
///  * sabotage        — first-passage of rate_s * P(t), owner uniform
///    over owned PLCs (constant hazards are memoryless).
///
/// When a membership count changes, the aggregate's next firing is
/// redrawn from `now` at the new rate — exact by memorylessness
/// (min(Exp(a), Exp(b)) ~ Exp(a+b), and the remaining wait of a Poisson
/// superposition at any instant is Exp(total rate)). The event law of
/// the model is exactly the per-node construction's; only the RNG draw
/// sequence differs. What remains per-node — activation and privilege
/// escalation retries — lives in a small binary heap that stays a few
/// entries deep, so the per-event cost no longer grows with fleet
/// compromise the way a per-node event queue's does.
struct QEvent {
  double at = 0.0;
  std::uint32_t seq = 0;  // FIFO tie-break among equal timestamps
  std::uint32_t node = 0;
  std::uint8_t kind = 0;  // 0 = activation, 1 = privesc
};

struct QLater {
  [[nodiscard]] bool operator()(const QEvent& x, const QEvent& y) const noexcept {
    if (x.at != y.at) return x.at > y.at;
    return x.seq > y.seq;
  }
};

constexpr double kNever = std::numeric_limits<double>::infinity();

/// Mutable state of one run() over the read-only CampaignTables.
struct RunState {
  const Scenario& sc;
  const ThreatProfile& pr;
  const DetectionModel& det;
  const CampaignOptions& opt;
  const CampaignTables& tb;
  stats::Rng& rng;
  CampaignResult result;

  double now = 0.0;
  bool stopped = false;  // both terminal indicators settled

  // Aggregate process clocks (kNever = disarmed).
  double t_entry = kNever;
  double t_prop = kNever;
  double t_payload = kNever;
  double t_host = kNever;
  double t_alarm = kNever;
  double t_sabotage = kNever;

  // Per-node transient events (activation / privesc retries).
  std::vector<QEvent> heap;  // min-heap via std::push_heap/pop_heap
  std::uint32_t next_seq = 0;

  std::vector<NodeState> state;
  std::vector<std::uint8_t> plc_owned;
  std::vector<NodeId> roots;            // nodes at kRoot, in promotion order
  std::vector<NodeId> payload_sources;  // rooted engineering/SCADA nodes
  std::vector<NodeId> owned_plcs;       // owned targets, in capture order
  std::vector<NodeId> unowned_targets;  // target_plcs minus owned, in order
  std::size_t hosts_owned = 0;     // non-PLC nodes at >= kActivated
  std::size_t activated_count = 0;  // A(t): host-IDS exposure pool

  RunState(const Scenario& s, const ThreatProfile& p,
           const CampaignTables& t, const DetectionModel& d,
           const CampaignOptions& o, stats::Rng& r)
      : sc(s), pr(p), det(d), opt(o), tb(t), rng(r) {
    state.assign(tb.node_count, NodeState::kClean);
    plc_owned.assign(tb.node_count, 0);
    unowned_targets = sc.target_plcs;
    heap.reserve(64);
    result.compromised_ratio.emplace_back(0.0, 0.0);
  }

  void note(NodeId n, CampaignEventKind kind) {
    if (opt.record_events) result.events.push_back({now, n, kind});
  }

  [[nodiscard]] double exp_delay(double rate) {
    return -std::log(1.0 - rng.uniform()) / rate;
  }

  /// Next firing of an aggregate process at `rate`, from now.
  [[nodiscard]] double exp_in(double rate) {
    return rate > 0.0 ? now + exp_delay(rate) : kNever;
  }

  void push(std::uint8_t kind, NodeId node, double delay) {
    heap.push_back(QEvent{now + delay, next_seq++,
                          static_cast<std::uint32_t>(node), kind});
    std::push_heap(heap.begin(), heap.end(), QLater{});
  }

  void record_ratio() {
    const double r = static_cast<double>(hosts_owned + owned_plcs.size()) /
                     static_cast<double>(tb.node_count);
    result.compromised_ratio.emplace_back(now, r);
  }

  void record_detection(CampaignEventKind what) {
    if (result.time_to_detection) return;
    result.time_to_detection = now;
    note(0, what);
    t_host = kNever;  // later detections would be ignored anyway
    t_alarm = kNever;
    maybe_finish();
  }

  /// A failed exploitation attempt may trip crash reporting / AV / IDS.
  /// Deliberately not stealth-discounted: crashes are loud.
  void failed_attempt() {
    const double p = det.failed_attempt_detection;
    if (p > 0.0 && rng.bernoulli(p))
      record_detection(CampaignEventKind::kFailedExploitDetected);
  }

  void maybe_finish() {
    // Stop once both terminal indicators are known — or once detection
    // triggered incident response (the attacker is frozen, so TTA can
    // never happen).
    if (result.time_to_detection.has_value() &&
        (result.time_to_attack.has_value() || opt.detection_halts_attack))
      stopped = true;
  }

  // --- Attack processes ------------------------------------------------

  [[nodiscard]] bool effective_reach(NodeId from, NodeId to, net::Channel ch) {
    // Physical / policy reachability; a denied-by-policy hop can still be
    // attempted through a firewall exploit (tunnelling).
    if (tb.reach.can_reach(from, to, ch)) return true;
    if (ch == net::Channel::kUsb) return false;
    if (!tb.reach.linked(from, to)) return false;
    return rng.bernoulli(tb.firewall_bypass_p);
  }

  void deliver(NodeId n, CampaignEventKind kind) {
    state[n] = NodeState::kDelivered;
    note(n, kind);
    push(0, n, exp_delay(tb.activation_rate[n]));
  }

  void on_entry() {
    const NodeId n = sc.entry_nodes[rng.below(sc.entry_nodes.size())];
    if (state[n] == NodeState::kClean) {
      if (!result.time_of_entry) result.time_of_entry = now;
      deliver(n, CampaignEventKind::kDelivered);
    }
    t_entry = exp_in(pr.entry_rate);  // operators keep plugging media in
  }

  void on_activation(NodeId n) {
    if (state[n] != NodeState::kDelivered) return;
    if (rng.bernoulli(tb.activation_p[n])) {
      state[n] = NodeState::kActivated;
      if (!tb.is_plc[n]) ++hosts_owned;
      ++activated_count;
      if (!result.time_to_detection && tb.host_detection_rate > 0.0)
        t_host = exp_in(tb.host_detection_rate *
                        static_cast<double>(activated_count));
      note(n, CampaignEventKind::kActivated);
      record_ratio();
      push(1, n, exp_delay(tb.privesc_rate[n]));
    } else {
      failed_attempt();
      push(0, n, exp_delay(tb.activation_rate[n]));
    }
  }

  void on_privesc(NodeId n) {
    if (state[n] != NodeState::kActivated) return;
    if (rng.bernoulli(tb.privesc_p[n])) {
      state[n] = NodeState::kRoot;
      if (!result.first_root) result.first_root = now;
      note(n, CampaignEventKind::kRoot);
      roots.push_back(n);
      t_prop = exp_in(pr.propagation_rate * static_cast<double>(roots.size()));
      if (tb.payload_source[n]) {
        payload_sources.push_back(n);
        if (!unowned_targets.empty())
          t_payload = exp_in(pr.payload_rate *
                             static_cast<double>(payload_sources.size()));
      }
    } else {
      failed_attempt();
      push(1, n, exp_delay(tb.privesc_rate[n]));
    }
  }

  void on_propagation() {
    // One scan of the aggregate worm process: owner uniform over roots,
    // then a random victim and channel; most attempts fizzle, which is
    // exactly how scanning worms behave.
    const NodeId n = roots[rng.below(roots.size())];
    const NodeId v = static_cast<NodeId>(rng.below(tb.node_count));
    const net::Channel ch = pr.channels[rng.below(pr.channels.size())];
    if (v != n && tb.host_target[v] && state[v] == NodeState::kClean &&
        effective_reach(n, v, ch)) {
      if (rng.bernoulli(tb.lateral_p[v])) {
        deliver(v, CampaignEventKind::kDeliveredLateral);
      } else {
        failed_attempt();
      }
    }
    t_prop = exp_in(pr.propagation_rate * static_cast<double>(roots.size()));
  }

  void on_payload() {
    // One push of the aggregate payload process: a rooted
    // engineering/SCADA source tries an unowned target PLC over an
    // engineering or fieldbus channel. Once every target is owned the
    // process disarms — targets never refill, so later firings could
    // only ever be no-ops.
    if (!unowned_targets.empty()) {
      const NodeId n = payload_sources[rng.below(payload_sources.size())];
      const std::size_t pick = rng.below(unowned_targets.size());
      const NodeId plc = unowned_targets[pick];
      const bool via_project = effective_reach(n, plc, net::Channel::kProjectFile);
      const bool via_modbus =
          !via_project && effective_reach(n, plc, net::Channel::kModbus);
      if (via_project || via_modbus) {
        const double p = via_modbus ? tb.plc_modbus_p[plc] : tb.plc_direct_p[plc];
        if (rng.bernoulli(p)) {
          plc_owned[plc] = 1;
          owned_plcs.push_back(plc);
          unowned_targets.erase(unowned_targets.begin() +
                                static_cast<std::ptrdiff_t>(pick));
          if (!result.first_plc_compromise) result.first_plc_compromise = now;
          note(plc, CampaignEventKind::kPlcCompromised);
          record_ratio();
          const double owned = static_cast<double>(owned_plcs.size());
          if (!result.time_to_attack)
            t_sabotage = exp_in(owned / pr.sabotage_mean_hours);
          if (!result.time_to_detection)
            t_alarm = exp_in(det.alarm_detection_rate * owned);
        } else {
          failed_attempt();
        }
      }
    }
    t_payload =
        unowned_targets.empty()
            ? kNever
            : exp_in(pr.payload_rate * static_cast<double>(payload_sources.size()));
  }

  void on_sabotage() {
    // First passage of the aggregate sabotage process: slow physical
    // damage develops on one owned PLC (uniform by symmetry of the
    // constant per-PLC hazards).
    const NodeId plc = owned_plcs[rng.below(owned_plcs.size())];
    result.time_to_attack = now;
    note(plc, CampaignEventKind::kDeviceImpaired);
    t_sabotage = kNever;
    maybe_finish();
  }

  // --- Detection processes ----------------------------------------------

  void on_host_detect() {
    // First passage of the aggregate host-IDS process over the activated
    // pool: any activated node suffices to raise the incident.
    record_detection(CampaignEventKind::kHostIdsDetection);
  }

  void on_alarm_detect() {
    // Thinning: poll at the undefended alarm rate (one chain per owned
    // PLC), accept with the current spoof-adjusted probability.
    // Full-strength spoofing needs an owned monitoring view (HMI, SCADA
    // server, or the engineering station running the vendor tools, where
    // Stuxnet actually hooked the s7otbxdx DLL); otherwise replaying
    // recorded signals is only half effective.
    bool view_owned = false;
    for (const NodeId n : roots)
      if (tb.monitoring_view[n]) {
        view_owned = true;
        break;
      }
    const double spoof = pr.spoof_effectiveness * (view_owned ? 1.0 : 0.5);
    if (rng.bernoulli(1.0 - spoof)) {
      record_detection(CampaignEventKind::kPlantAlarmDetection);
      return;
    }
    t_alarm =
        exp_in(det.alarm_detection_rate * static_cast<double>(owned_plcs.size()));
  }

  void run_until(double t_max) {
    t_entry = exp_in(pr.entry_rate);
    while (!stopped) {
      // Next event: min over the aggregate clocks and the retry heap.
      // Exact ties are measure-zero (all delays are continuous); the
      // scan order below fixes them deterministically.
      double at = t_entry;
      int which = 0;
      if (t_prop < at) { at = t_prop; which = 1; }
      if (t_payload < at) { at = t_payload; which = 2; }
      if (t_sabotage < at) { at = t_sabotage; which = 3; }
      if (t_host < at) { at = t_host; which = 4; }
      if (t_alarm < at) { at = t_alarm; which = 5; }
      if (!heap.empty() && heap.front().at < at) { at = heap.front().at; which = 6; }
      if (at > t_max) break;  // includes the all-disarmed (kNever) case
      now = at;
      ++result.events_executed;
      switch (which) {
        case 0: on_entry(); break;
        case 1: on_propagation(); break;
        case 2: on_payload(); break;
        case 3: on_sabotage(); break;
        case 4: on_host_detect(); break;
        case 5: on_alarm_detect(); break;
        case 6: {
          const QEvent ev = heap.front();
          std::pop_heap(heap.begin(), heap.end(), QLater{});
          heap.pop_back();
          if (ev.kind == 0)
            on_activation(ev.node);
          else
            on_privesc(ev.node);
          break;
        }
      }
    }
  }
};

}  // namespace

CampaignResult CampaignSimulator::run(stats::Rng& rng) const {
  RunState st(scenario_, profile_, *tables_, detection_, options_, rng);
  st.run_until(options_.t_max_hours);
  st.result.hosts_compromised = st.hosts_owned;
  st.result.plcs_compromised = st.owned_plcs.size();
  return std::move(st.result);
}

Scenario make_scope_cooling_scenario() {
  Scenario sc;
  auto& t = sc.topology;
  using net::Role;
  using net::Zone;
  // Corporate
  const auto ws1 = t.add_node("corp.ws1", Zone::kCorporate, Role::kWorkstation, true);
  const auto ws2 = t.add_node("corp.ws2", Zone::kCorporate, Role::kWorkstation, true);
  const auto mail = t.add_node("corp.server", Zone::kCorporate, Role::kServer, false);
  // DMZ
  const auto mirror = t.add_node("dmz.hist-mirror", Zone::kDmz, Role::kHistorian, false);
  // Control
  const auto scada = t.add_node("ctl.scada", Zone::kControl, Role::kScadaServer, false);
  const auto eng = t.add_node("ctl.eng", Zone::kControl, Role::kEngineering, true);
  const auto hmi = t.add_node("ctl.hmi", Zone::kControl, Role::kHmi, false);
  const auto hist = t.add_node("ctl.historian", Zone::kControl, Role::kHistorian, false);
  // Field
  const auto plc1 = t.add_node("fld.plc-chiller", Zone::kField, Role::kPlc, false);
  const auto plc2 = t.add_node("fld.plc-crac", Zone::kField, Role::kPlc, false);
  const auto gw = t.add_node("fld.sensor-gw", Zone::kField, Role::kSensorGateway, false);

  // Corporate LAN
  t.connect(ws1, ws2);
  t.connect(ws1, mail);
  t.connect(ws2, mail);
  // Corporate <-> DMZ <-> control
  t.connect(mail, mirror);
  t.connect(mirror, hist);
  // Control LAN
  t.connect(scada, eng);
  t.connect(scada, hmi);
  t.connect(scada, hist);
  t.connect(eng, hmi);
  // Control <-> field
  t.connect(scada, plc1);
  t.connect(scada, plc2);
  t.connect(eng, plc1);
  t.connect(eng, plc2);
  t.connect(scada, gw);

  sc.firewall = net::Firewall::segmented_ics();
  sc.firewall_variant = 0;
  sc.software.assign(t.node_count(), NodeSoftware{});
  sc.software[plc1].plc_firmware = 0;
  sc.software[plc2].plc_firmware = 0;
  sc.software[hmi].hmi = 0;
  sc.software[mirror].historian = 0;
  sc.software[hist].historian = 0;
  sc.entry_nodes = {ws1, ws2, eng};
  sc.target_plcs = {plc1, plc2};
  return sc;
}

}  // namespace divsec::attack
