#include "attack/campaign.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/reachability.h"
#include "sim/simulator.h"

namespace divsec::attack {

using divers::ComponentKind;
using net::NodeId;

void Scenario::validate(const divers::VariantCatalog& catalog) const {
  if (software.size() != topology.node_count())
    throw std::invalid_argument("Scenario: software size != node count");
  if (entry_nodes.empty()) throw std::invalid_argument("Scenario: no entry nodes");
  if (firewall_variant >= catalog.count(ComponentKind::kFirewallFirmware))
    throw std::out_of_range("Scenario: firewall variant out of range");
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    const auto& sw = software[n];
    if (sw.os >= catalog.count(ComponentKind::kOs))
      throw std::out_of_range("Scenario: OS variant out of range");
    if (sw.protocol >= catalog.count(ComponentKind::kProtocolStack))
      throw std::out_of_range("Scenario: protocol variant out of range");
    if (sw.plc_firmware &&
        *sw.plc_firmware >= catalog.count(ComponentKind::kPlcFirmware))
      throw std::out_of_range("Scenario: PLC firmware variant out of range");
    if (sw.hmi && *sw.hmi >= catalog.count(ComponentKind::kHmiSoftware))
      throw std::out_of_range("Scenario: HMI variant out of range");
    if (sw.historian && *sw.historian >= catalog.count(ComponentKind::kHistorianDb))
      throw std::out_of_range("Scenario: historian variant out of range");
    if (topology.node(n).role == net::Role::kPlc && !sw.plc_firmware)
      throw std::invalid_argument("Scenario: PLC node without firmware variant");
  }
  for (NodeId n : entry_nodes)
    if (n >= topology.node_count())
      throw std::out_of_range("Scenario: entry node out of range");
  for (NodeId n : target_plcs) {
    if (n >= topology.node_count())
      throw std::out_of_range("Scenario: target PLC out of range");
    if (topology.node(n).role != net::Role::kPlc)
      throw std::invalid_argument("Scenario: sabotage target is not a PLC");
  }
}

double CampaignResult::ratio_at(double t) const noexcept {
  double r = 0.0;
  for (const auto& [time, ratio] : compromised_ratio) {
    if (time > t) break;
    r = ratio;
  }
  return r;
}

CampaignSimulator::CampaignSimulator(Scenario scenario, ThreatProfile profile,
                                     const divers::VariantCatalog& catalog,
                                     DetectionModel detection, CampaignOptions options)
    : scenario_(std::move(scenario)),
      profile_(std::move(profile)),
      catalog_(catalog),
      detection_(detection),
      options_(options) {
  profile_.validate();
  detection_.validate();
  scenario_.validate(catalog_);
  if (!(options_.t_max_hours > 0.0))
    throw std::invalid_argument("CampaignOptions: t_max_hours must be > 0");
}

namespace {

/// Mutable campaign state shared by the event handlers of one run().
struct RunState {
  const Scenario& sc;
  const ThreatProfile& pr;
  const divers::VariantCatalog& cat;
  const DetectionModel& det;
  const CampaignOptions& opt;
  sim::Simulator sim;
  stats::Rng& rng;
  CampaignResult result;

  std::vector<NodeState> state;
  std::vector<bool> plc_owned;
  bool halted = false;  // incident response froze the attacker

  RunState(const Scenario& s, const ThreatProfile& p, const divers::VariantCatalog& c,
           const DetectionModel& d, const CampaignOptions& o, stats::Rng& r)
      : sc(s), pr(p), cat(c), det(d), opt(o), rng(r) {
    state.assign(sc.topology.node_count(), NodeState::kClean);
    plc_owned.assign(sc.topology.node_count(), false);
    result.compromised_ratio.emplace_back(0.0, 0.0);
  }

  void note(NodeId n, const char* what) {
    if (opt.record_events) result.events.push_back({sim.now(), n, what});
  }

  [[nodiscard]] double exp_delay(double rate) {
    return -std::log(1.0 - rng.uniform()) / rate;
  }

  [[nodiscard]] std::size_t compromised_count() const {
    std::size_t c = 0;
    for (NodeId n = 0; n < state.size(); ++n) {
      if (sc.topology.node(n).role == net::Role::kPlc) {
        if (plc_owned[n]) ++c;
      } else if (state[n] >= NodeState::kActivated) {
        ++c;
      }
    }
    return c;
  }

  void record_ratio() {
    const double r = static_cast<double>(compromised_count()) /
                     static_cast<double>(sc.topology.node_count());
    result.compromised_ratio.emplace_back(sim.now(), r);
  }

  void record_detection(const char* what) {
    if (result.time_to_detection) return;
    result.time_to_detection = sim.now();
    note(0, what);
    if (opt.detection_halts_attack) halted = true;
    maybe_finish();
  }

  /// A failed exploitation attempt may trip crash reporting / AV / IDS.
  /// Deliberately not stealth-discounted: crashes are loud.
  void failed_attempt() {
    const double p = det.failed_attempt_detection;
    if (p > 0.0 && rng.bernoulli(p)) record_detection("failed-exploit-detected");
  }

  void maybe_finish() {
    // Once both terminal indicators are known (or the attack is frozen
    // and can make no further progress), stop simulating.
    const bool tta_settled = result.time_to_attack.has_value() || halted;
    if (tta_settled && result.time_to_detection.has_value()) sim.stop();
  }

  // --- Attack processes ------------------------------------------------

  [[nodiscard]] bool effective_reach(NodeId from, NodeId to, net::Channel ch) {
    // Physical / policy reachability; a denied-by-policy hop can still be
    // attempted through a firewall exploit (tunnelling).
    if (net::can_reach(sc.topology, sc.firewall, from, to, ch)) return true;
    if (ch == net::Channel::kUsb) return false;
    if (!sc.topology.linked(from, to)) return false;
    const double bypass =
        cat.exploit_success(pr.firewall_exploit, sc.firewall_variant);
    return rng.bernoulli(bypass);
  }

  void schedule_entry() {
    sim.schedule_in(exp_delay(pr.entry_rate), [this] {
      if (!halted) {
        const NodeId n = sc.entry_nodes[rng.below(sc.entry_nodes.size())];
        if (state[n] == NodeState::kClean) {
          state[n] = NodeState::kDelivered;
          if (!result.time_of_entry) result.time_of_entry = sim.now();
          note(n, "delivered");
          schedule_activation(n);
        }
      }
      schedule_entry();  // operators keep plugging media in
    });
  }

  void schedule_activation(NodeId n) {
    const double wf = cat.exploit_work_factor(pr.activation_exploit, sc.software[n].os);
    sim.schedule_in(exp_delay(pr.activation_rate / wf), [this, n] {
      if (halted || state[n] != NodeState::kDelivered) return;
      const double p = cat.exploit_success(pr.activation_exploit, sc.software[n].os);
      if (rng.bernoulli(p)) {
        state[n] = NodeState::kActivated;
        note(n, "activated");
        record_ratio();
        schedule_privesc(n);
        schedule_host_detection(n);
      } else {
        failed_attempt();
        schedule_activation(n);
      }
    });
  }

  void schedule_privesc(NodeId n) {
    const double wf = cat.exploit_work_factor(pr.privesc_exploit, sc.software[n].os);
    sim.schedule_in(exp_delay(pr.privesc_rate / wf), [this, n] {
      if (halted || state[n] != NodeState::kActivated) return;
      const double p = cat.exploit_success(pr.privesc_exploit, sc.software[n].os);
      if (rng.bernoulli(p)) {
        state[n] = NodeState::kRoot;
        if (!result.first_root) result.first_root = sim.now();
        note(n, "root");
        schedule_propagation(n);
        if (can_deliver_payload(n)) schedule_payload(n);
      } else {
        failed_attempt();
        schedule_privesc(n);
      }
    });
  }

  void schedule_propagation(NodeId n) {
    sim.schedule_in(exp_delay(pr.propagation_rate), [this, n] {
      if (halted || state[n] != NodeState::kRoot) return;
      // Pick a random victim and channel; most attempts fizzle, which is
      // exactly how scanning worms behave.
      const NodeId v = static_cast<NodeId>(rng.below(sc.topology.node_count()));
      const net::Channel ch = pr.channels[rng.below(pr.channels.size())];
      const bool host_target = sc.topology.node(v).role != net::Role::kPlc &&
                               sc.topology.node(v).role != net::Role::kSensorGateway;
      if (v != n && host_target && state[v] == NodeState::kClean &&
          effective_reach(n, v, ch)) {
        const double p = cat.exploit_success(pr.lateral_exploit, sc.software[v].os);
        if (rng.bernoulli(p)) {
          state[v] = NodeState::kDelivered;
          note(v, "delivered-lateral");
          schedule_activation(v);
        } else {
          failed_attempt();
        }
      }
      schedule_propagation(n);
    });
  }

  [[nodiscard]] bool can_deliver_payload(NodeId n) const {
    const net::Role r = sc.topology.node(n).role;
    return pr.has_sabotage_payload &&
           (r == net::Role::kEngineering || r == net::Role::kScadaServer);
  }

  void schedule_payload(NodeId n) {
    sim.schedule_in(exp_delay(pr.payload_rate), [this, n] {
      if (halted || state[n] != NodeState::kRoot) return;
      // Choose an unowned target PLC reachable over an engineering or
      // fieldbus channel.
      std::vector<NodeId> candidates;
      for (NodeId plc : sc.target_plcs)
        if (!plc_owned[plc]) candidates.push_back(plc);
      if (!candidates.empty()) {
        const NodeId plc = candidates[rng.below(candidates.size())];
        const bool via_project = effective_reach(n, plc, net::Channel::kProjectFile);
        const bool via_modbus =
            !via_project && effective_reach(n, plc, net::Channel::kModbus);
        if (via_project || via_modbus) {
          double p = cat.exploit_success(pr.plc_exploit, *sc.software[plc].plc_firmware);
          if (via_modbus)  // fieldbus route also has to abuse the stack
            p *= cat.exploit_success(pr.protocol_exploit, sc.software[plc].protocol);
          if (rng.bernoulli(p)) {
            plc_owned[plc] = true;
            if (!result.first_plc_compromise) result.first_plc_compromise = sim.now();
            note(plc, "plc-compromised");
            record_ratio();
            schedule_sabotage(plc);
            schedule_alarm_detection();
          } else {
            failed_attempt();
          }
        }
      }
      schedule_payload(n);
    });
  }

  void schedule_sabotage(NodeId plc) {
    sim.schedule_in(exp_delay(1.0 / pr.sabotage_mean_hours), [this, plc] {
      if (halted || !plc_owned[plc]) return;
      if (!result.time_to_attack) {
        result.time_to_attack = sim.now();
        note(plc, "device-impaired");
        maybe_finish();
      }
    });
  }

  // --- Detection processes ----------------------------------------------

  void schedule_host_detection(NodeId n) {
    const double rate = det.host_detection_rate * (1.0 - pr.stealth);
    if (rate <= 0.0) return;
    sim.schedule_in(exp_delay(rate), [this, n] {
      if (result.time_to_detection) return;
      if (state[n] >= NodeState::kActivated) {
        record_detection("host-ids-detection");
        return;
      }
      schedule_host_detection(n);
    });
  }

  [[nodiscard]] double effective_spoof() const {
    // Full-strength spoofing needs an owned monitoring view (HMI, SCADA
    // server, or the engineering station running the vendor tools, where
    // Stuxnet actually hooked the s7otbxdx DLL); otherwise replaying
    // recorded signals is only half effective.
    bool view_owned = false;
    for (NodeId n = 0; n < state.size(); ++n) {
      const net::Role r = sc.topology.node(n).role;
      if ((r == net::Role::kHmi || r == net::Role::kScadaServer ||
           r == net::Role::kEngineering) &&
          state[n] == NodeState::kRoot) {
        view_owned = true;
        break;
      }
    }
    return pr.spoof_effectiveness * (view_owned ? 1.0 : 0.5);
  }

  void schedule_alarm_detection() {
    // Thinning: poll at the undefended alarm rate, accept with the
    // current spoof-adjusted probability.
    if (det.alarm_detection_rate <= 0.0) return;
    sim.schedule_in(exp_delay(det.alarm_detection_rate), [this] {
      if (result.time_to_detection) return;
      bool any_owned = false;
      for (NodeId n = 0; n < plc_owned.size(); ++n)
        if (plc_owned[n]) any_owned = true;
      if (!any_owned) return;
      if (rng.bernoulli(1.0 - effective_spoof())) {
        record_detection("plant-alarm-detection");
        return;
      }
      schedule_alarm_detection();
    });
  }
};

}  // namespace

CampaignResult CampaignSimulator::run(stats::Rng& rng) const {
  RunState st(scenario_, profile_, catalog_, detection_, options_, rng);
  st.schedule_entry();
  st.sim.run_until(options_.t_max_hours);
  st.result.hosts_compromised = 0;
  st.result.plcs_compromised = 0;
  for (NodeId n = 0; n < st.state.size(); ++n) {
    if (st.sc.topology.node(n).role == net::Role::kPlc) {
      if (st.plc_owned[n]) ++st.result.plcs_compromised;
    } else if (st.state[n] >= NodeState::kActivated) {
      ++st.result.hosts_compromised;
    }
  }
  return std::move(st.result);
}

Scenario make_scope_cooling_scenario() {
  Scenario sc;
  auto& t = sc.topology;
  using net::Role;
  using net::Zone;
  // Corporate
  const auto ws1 = t.add_node("corp.ws1", Zone::kCorporate, Role::kWorkstation, true);
  const auto ws2 = t.add_node("corp.ws2", Zone::kCorporate, Role::kWorkstation, true);
  const auto mail = t.add_node("corp.server", Zone::kCorporate, Role::kServer, false);
  // DMZ
  const auto mirror = t.add_node("dmz.hist-mirror", Zone::kDmz, Role::kHistorian, false);
  // Control
  const auto scada = t.add_node("ctl.scada", Zone::kControl, Role::kScadaServer, false);
  const auto eng = t.add_node("ctl.eng", Zone::kControl, Role::kEngineering, true);
  const auto hmi = t.add_node("ctl.hmi", Zone::kControl, Role::kHmi, false);
  const auto hist = t.add_node("ctl.historian", Zone::kControl, Role::kHistorian, false);
  // Field
  const auto plc1 = t.add_node("fld.plc-chiller", Zone::kField, Role::kPlc, false);
  const auto plc2 = t.add_node("fld.plc-crac", Zone::kField, Role::kPlc, false);
  const auto gw = t.add_node("fld.sensor-gw", Zone::kField, Role::kSensorGateway, false);

  // Corporate LAN
  t.connect(ws1, ws2);
  t.connect(ws1, mail);
  t.connect(ws2, mail);
  // Corporate <-> DMZ <-> control
  t.connect(mail, mirror);
  t.connect(mirror, hist);
  // Control LAN
  t.connect(scada, eng);
  t.connect(scada, hmi);
  t.connect(scada, hist);
  t.connect(eng, hmi);
  // Control <-> field
  t.connect(scada, plc1);
  t.connect(scada, plc2);
  t.connect(eng, plc1);
  t.connect(eng, plc2);
  t.connect(scada, gw);

  sc.firewall = net::Firewall::segmented_ics();
  sc.firewall_variant = 0;
  sc.software.assign(t.node_count(), NodeSoftware{});
  sc.software[plc1].plc_firmware = 0;
  sc.software[plc2].plc_firmware = 0;
  sc.software[hmi].hmi = 0;
  sc.software[mirror].historian = 0;
  sc.software[hist].historian = 0;
  sc.entry_nodes = {ws1, ws2, eng};
  sc.target_plcs = {plc1, plc2};
  return sc;
}

}  // namespace divsec::attack
