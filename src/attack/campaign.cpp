#include "attack/campaign.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "attack/campaign_rng.h"
#include "net/reachability_index.h"
#include "obs/metrics.h"

namespace divsec::attack {

using divers::ComponentKind;
using net::NodeId;

void Scenario::validate(const divers::VariantCatalog& catalog) const {
  if (software.size() != topology.node_count())
    throw std::invalid_argument("Scenario: software size != node count");
  if (entry_nodes.empty()) throw std::invalid_argument("Scenario: no entry nodes");
  if (firewall_variant >= catalog.count(ComponentKind::kFirewallFirmware))
    throw std::out_of_range("Scenario: firewall variant out of range");
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    const auto& sw = software[n];
    if (sw.os >= catalog.count(ComponentKind::kOs))
      throw std::out_of_range("Scenario: OS variant out of range");
    if (sw.protocol >= catalog.count(ComponentKind::kProtocolStack))
      throw std::out_of_range("Scenario: protocol variant out of range");
    if (sw.plc_firmware &&
        *sw.plc_firmware >= catalog.count(ComponentKind::kPlcFirmware))
      throw std::out_of_range("Scenario: PLC firmware variant out of range");
    if (sw.hmi && *sw.hmi >= catalog.count(ComponentKind::kHmiSoftware))
      throw std::out_of_range("Scenario: HMI variant out of range");
    if (sw.historian && *sw.historian >= catalog.count(ComponentKind::kHistorianDb))
      throw std::out_of_range("Scenario: historian variant out of range");
    if (topology.node(n).role == net::Role::kPlc && !sw.plc_firmware)
      throw std::invalid_argument("Scenario: PLC node without firmware variant");
  }
  for (NodeId n : entry_nodes)
    if (n >= topology.node_count())
      throw std::out_of_range("Scenario: entry node out of range");
  for (NodeId n : target_plcs) {
    if (n >= topology.node_count())
      throw std::out_of_range("Scenario: target PLC out of range");
    if (topology.node(n).role != net::Role::kPlc)
      throw std::invalid_argument("Scenario: sabotage target is not a PLC");
  }
}

const char* to_string(CampaignEventKind k) noexcept {
  switch (k) {
    case CampaignEventKind::kDelivered: return "delivered";
    case CampaignEventKind::kDeliveredLateral: return "delivered-lateral";
    case CampaignEventKind::kActivated: return "activated";
    case CampaignEventKind::kRoot: return "root";
    case CampaignEventKind::kPlcCompromised: return "plc-compromised";
    case CampaignEventKind::kDeviceImpaired: return "device-impaired";
    case CampaignEventKind::kFailedExploitDetected: return "failed-exploit-detected";
    case CampaignEventKind::kHostIdsDetection: return "host-ids-detection";
    case CampaignEventKind::kPlantAlarmDetection: return "plant-alarm-detection";
  }
  return "?";
}

double CampaignResult::ratio_at(double t) const noexcept {
  // The step curve is sorted by time: binary-search the first step past t
  // (mean_ratio_curve calls this per grid point per replication — a
  // linear scan over a fleet-sized curve was the hot spot).
  const auto it = std::upper_bound(
      compromised_ratio.begin(), compromised_ratio.end(), t,
      [](double value, const std::pair<double, double>& step) {
        return value < step.first;
      });
  return it == compromised_ratio.begin() ? 0.0 : std::prev(it)->second;
}

/// Everything run() reads per event, precomputed once per scenario into
/// structure-of-arrays tables indexed by NodeId. Deeply immutable after
/// construction: concurrent replications share one Tables instance
/// read-only, and simulators of the same topology share one
/// ReachabilityIndex through the shared_ptr.
struct CampaignTables {
  // Role-derived per-node flags, fused into one byte per node so the
  // hot loop touches a single contiguous array.
  enum : std::uint8_t {
    kFlagPlc = 1,            // counts only when owned
    kFlagHostTarget = 2,     // valid lateral victim
    kFlagMonitoring = 4,     // HMI / SCADA / engineering view
    kFlagPayloadSource = 8,  // can push a PLC payload
  };

  std::shared_ptr<const net::ReachabilityIndex> reach;

  std::size_t node_count = 0;

  std::vector<std::uint8_t> flags;

  // Exploit tables: per-session success probability and exponential
  // delay rate per node (the VariantCatalog walk, paid once).
  std::vector<double> activation_p, activation_rate;
  std::vector<double> privesc_p, privesc_rate;
  std::vector<double> lateral_p;
  std::vector<double> plc_direct_p;  // project-file route
  std::vector<double> plc_modbus_p;  // fieldbus route (x protocol stack)
  double firewall_bypass_p = 0.0;
  double host_detection_rate = 0.0;  // stealth-discounted

  // Thinned-scan weights: scan_w[i] / tunnel_w[i] count node i's
  // (channel, victim) scan slots over pr.channels — statically reachable
  // targets and linked-but-blocked (tunnel) targets respectively. A
  // root's slot range in the weighted victim pick is laid out
  // [direct slots][tunnel slots], channels in pr.channels order; the
  // aggregate scan clock fires at propagation_rate × total slots ×
  // scan_norm, the exact Poisson thinning of per-root uniform
  // (victim, channel) scanning.
  std::vector<std::uint64_t> scan_w, tunnel_w;
  double scan_norm = 0.0;  // 1 / (node_count × |pr.channels|)

  CampaignTables(const Scenario& sc, const ThreatProfile& pr,
                 const divers::VariantCatalog& cat, const DetectionModel& det,
                 std::shared_ptr<const net::ReachabilityIndex> shared_reach)
      : reach(shared_reach
                  ? std::move(shared_reach)
                  : std::make_shared<const net::ReachabilityIndex>(sc.topology,
                                                                   sc.firewall)),
        node_count(sc.topology.node_count()) {
    if (reach->node_count() != node_count)
      throw std::invalid_argument(
          "CampaignSimulator: shared ReachabilityIndex node count does not "
          "match the scenario topology");
    const std::size_t n = node_count;
    flags.assign(n, 0);
    activation_p.resize(n);
    activation_rate.resize(n);
    privesc_p.resize(n);
    privesc_rate.resize(n);
    lateral_p.resize(n);
    plc_direct_p.assign(n, 0.0);
    plc_modbus_p.assign(n, 0.0);
    for (NodeId i = 0; i < n; ++i) {
      const net::Role role = sc.topology.node(i).role;
      std::uint8_t f = 0;
      if (role == net::Role::kPlc) f |= kFlagPlc;
      if (role != net::Role::kPlc && role != net::Role::kSensorGateway)
        f |= kFlagHostTarget;
      if (role == net::Role::kHmi || role == net::Role::kScadaServer ||
          role == net::Role::kEngineering)
        f |= kFlagMonitoring;
      if (pr.has_sabotage_payload && (role == net::Role::kEngineering ||
                                      role == net::Role::kScadaServer))
        f |= kFlagPayloadSource;
      flags[i] = f;
      const std::size_t os = sc.software[i].os;
      activation_p[i] = cat.exploit_success(pr.activation_exploit, os);
      activation_rate[i] =
          pr.activation_rate / cat.exploit_work_factor(pr.activation_exploit, os);
      privesc_p[i] = cat.exploit_success(pr.privesc_exploit, os);
      privesc_rate[i] =
          pr.privesc_rate / cat.exploit_work_factor(pr.privesc_exploit, os);
      lateral_p[i] = cat.exploit_success(pr.lateral_exploit, os);
    }
    for (NodeId plc : sc.target_plcs) {
      plc_direct_p[plc] =
          cat.exploit_success(pr.plc_exploit, *sc.software[plc].plc_firmware);
      // The fieldbus route also has to abuse the protocol stack.
      plc_modbus_p[plc] =
          plc_direct_p[plc] *
          cat.exploit_success(pr.protocol_exploit, sc.software[plc].protocol);
    }
    firewall_bypass_p = cat.exploit_success(pr.firewall_exploit, sc.firewall_variant);
    host_detection_rate = det.host_detection_rate * (1.0 - pr.stealth);
    scan_w.assign(n, 0);
    tunnel_w.assign(n, 0);
    for (NodeId i = 0; i < n; ++i) {
      for (const net::Channel c : pr.channels) {
        scan_w[i] += reach->scan_targets(c, i).size();
        tunnel_w[i] += reach->tunnel_targets(c, i).size();
      }
    }
    scan_norm = pr.channels.empty()
                    ? 0.0
                    : 1.0 / (static_cast<double>(n) *
                             static_cast<double>(pr.channels.size()));
  }
};

CampaignSimulator::CampaignSimulator(Scenario scenario, ThreatProfile profile,
                                     const divers::VariantCatalog& catalog,
                                     DetectionModel detection, CampaignOptions options)
    : CampaignSimulator(std::move(scenario), std::move(profile), catalog,
                        detection, options, nullptr) {}

CampaignSimulator::CampaignSimulator(
    Scenario scenario, ThreatProfile profile,
    const divers::VariantCatalog& catalog, DetectionModel detection,
    CampaignOptions options,
    std::shared_ptr<const net::ReachabilityIndex> shared_reach)
    : scenario_(std::move(scenario)),
      profile_(std::move(profile)),
      catalog_(catalog),
      detection_(detection),
      options_(options) {
  profile_.validate();
  detection_.validate();
  scenario_.validate(catalog_);
  if (!(options_.t_max_hours > 0.0))
    throw std::invalid_argument("CampaignOptions: t_max_hours must be > 0");
  tables_ = std::make_unique<const CampaignTables>(
      scenario_, profile_, catalog_, detection_, std::move(shared_reach));
}

CampaignSimulator::~CampaignSimulator() = default;
CampaignSimulator::CampaignSimulator(CampaignSimulator&&) noexcept = default;

const net::ReachabilityIndex& CampaignSimulator::reachability() const noexcept {
  return *tables_->reach;
}

std::shared_ptr<const net::ReachabilityIndex>
CampaignSimulator::shared_reachability() const noexcept {
  return tables_->reach;
}

namespace {

/// The campaign's stochastic processes are superposed Poisson streams,
/// and the engine schedules them as such instead of keeping one pending
/// event per node in a shared queue (what the generic sim::Simulator
/// forced). Per class:
///
///  * worm scanning   — every root scans at rate lambda_p; the
///    superposition is one aggregate process of rate lambda_p * R(t)
///    whose firing owner is uniform over the R roots (exponential race);
///  * payload pushes  — rate lambda_pl * S(t) over rooted
///    engineering/SCADA sources, same construction;
///  * host IDS        — each activated node is detected after an
///    exponential delay; only the FIRST detection matters, and before it
///    the hazard is rate_h * A(t) — one aggregate first-passage process;
///  * plant alarms    — one poll chain per owned PLC in the old model,
///    i.e. rate_a * P(t) aggregated, thinned by the current spoofing;
///  * sabotage        — first-passage of rate_s * P(t), owner uniform
///    over owned PLCs (constant hazards are memoryless).
///
/// When a membership count changes, the aggregate's next firing is
/// redrawn from `now` at the new rate — exact by memorylessness
/// (min(Exp(a), Exp(b)) ~ Exp(a+b), and the remaining wait of a Poisson
/// superposition at any instant is Exp(total rate)). The event law of
/// the model is exactly the per-node construction's; only the RNG draw
/// sequence differs. What remains per-node — activation and privilege
/// escalation retries — lives in a small binary heap that stays a few
/// entries deep, so the per-event cost no longer grows with fleet
/// compromise the way a per-node event queue's does.
struct QEvent {
  double at = 0.0;
  std::uint32_t seq = 0;  // FIFO tie-break among equal timestamps
  std::uint32_t node = 0;
  std::uint8_t kind = 0;  // 0 = activation, 1 = privesc
};

struct QLater {
  [[nodiscard]] bool operator()(const QEvent& x, const QEvent& y) const noexcept {
    if (x.at != y.at) return x.at > y.at;
    return x.seq > y.seq;
  }
};

constexpr double kNever = std::numeric_limits<double>::infinity();

/// Mutable state of one run() over the read-only CampaignTables, shared
/// by both kernels through a compile-time switch. Every random decision
/// draws from the per-event-class facade (attack/campaign_rng.h) under
/// the documented draw-order contract, so the two instantiations consume
/// identical per-class word sequences and produce bit-identical results:
///
///  * kSoA = true  — the batched structure-of-arrays kernel: per-class
///    words prefetched in blocks, victim eligibility fused into one
///    scan_clean byte per node (host-target AND still-clean), the
///    monitoring-view ownership kept as an incremental counter, and the
///    unowned-target pool shrunk by swap-remove;
///  * kSoA = false — the scalar reference: a straight port of the
///    pre-SoA loop (per-draw streams, separate flag tests, linear
///    monitoring scan) onto the same facade. The swap-remove pool
///    discipline is shared — it is part of the draw-order contract,
///    because the pool order feeds later uniform picks.
template <bool kSoA>
struct RunState {
  const Scenario& sc;
  const ThreatProfile& pr;
  const DetectionModel& det;
  const CampaignOptions& opt;
  const CampaignTables& tb;
  CampaignRng rng;
  CampaignResult result;

  double now = 0.0;
  bool stopped = false;  // both terminal indicators settled

  // Aggregate process clocks (kNever = disarmed).
  double t_entry = kNever;
  double t_prop = kNever;
  double t_payload = kNever;
  double t_host = kNever;
  double t_alarm = kNever;
  double t_sabotage = kNever;

  // Per-node transient events (activation / privesc retries).
  std::vector<QEvent> heap;  // min-heap via std::push_heap/pop_heap
  std::uint32_t next_seq = 0;

  std::vector<NodeState> state;
  std::vector<std::uint8_t> plc_owned;
  /// kSoA only: scan_clean[v] == (host-target AND state == kClean), the
  /// fused one-load eligibility test of the propagation fast path.
  std::vector<std::uint8_t> scan_clean;
  std::vector<NodeId> roots;            // nodes at kRoot, in promotion order
  std::vector<std::uint64_t> root_cum;  // cumulative scan+tunnel slots per root
  std::uint64_t scan_slots = 0;         // == root_cum.back() (0 when no roots)
  std::vector<NodeId> payload_sources;  // rooted engineering/SCADA nodes
  std::vector<NodeId> owned_plcs;       // owned targets, in capture order
  std::vector<NodeId> unowned_targets;  // target_plcs minus owned (swap-remove)
  std::size_t hosts_owned = 0;     // non-PLC nodes at >= kActivated
  std::size_t activated_count = 0;  // A(t): host-IDS exposure pool
  std::size_t monitoring_owned = 0;  // kSoA: rooted monitoring-view nodes

  RunState(const Scenario& s, const ThreatProfile& p,
           const CampaignTables& t, const DetectionModel& d,
           const CampaignOptions& o, const stats::Rng& base)
      : sc(s),
        pr(p),
        det(d),
        opt(o),
        tb(t),
        rng(base, kSoA ? kDefaultDrawBlock : 1) {
    state.assign(tb.node_count, NodeState::kClean);
    plc_owned.assign(tb.node_count, 0);
    if constexpr (kSoA) {
      scan_clean.resize(tb.node_count);
      for (std::size_t i = 0; i < tb.node_count; ++i)
        scan_clean[i] = (tb.flags[i] & CampaignTables::kFlagHostTarget) ? 1 : 0;
    }
    unowned_targets = sc.target_plcs;
    heap.reserve(64);
    result.compromised_ratio.emplace_back(0.0, 0.0);
  }

  // Telemetry tallies: plain locals, flushed to the striped obs::
  // counters once per run (run_kernel), so the event loop never touches
  // an atomic. Observation only — results do not depend on them.
  std::array<std::uint64_t, kEventKindCount> kind_counts{};
  std::uint64_t scan_candidates = 0;  // thinned worm-scan firings
  std::uint64_t scan_accepted = 0;    // ... that attempted a lateral

  void note(NodeId n, CampaignEventKind kind) {
    ++kind_counts[static_cast<std::size_t>(kind)];
    if (opt.record_events) result.events.push_back({now, n, kind});
  }

  [[nodiscard]] double exp_delay(DrawClass c, double rate) {
    return rng.exp_std(c) / rate;
  }

  /// Next firing of an aggregate process at `rate`, from now. The draw
  /// belongs to the class of the process being armed.
  [[nodiscard]] double exp_in(DrawClass c, double rate) {
    return rate > 0.0 ? now + exp_delay(c, rate) : kNever;
  }

  void push(std::uint8_t kind, NodeId node, double delay) {
    heap.push_back(QEvent{now + delay, next_seq++,
                          static_cast<std::uint32_t>(node), kind});
    std::push_heap(heap.begin(), heap.end(), QLater{});
  }

  void record_ratio() {
    const double r = static_cast<double>(hosts_owned + owned_plcs.size()) /
                     static_cast<double>(tb.node_count);
    result.compromised_ratio.emplace_back(now, r);
  }

  void record_detection(CampaignEventKind what) {
    if (result.time_to_detection) return;
    result.time_to_detection = now;
    note(0, what);
    t_host = kNever;  // later detections would be ignored anyway
    t_alarm = kNever;
    maybe_finish();
  }

  /// A failed exploitation attempt may trip crash reporting / AV / IDS.
  /// Deliberately not stealth-discounted: crashes are loud. The draw
  /// belongs to the class of the handler whose attempt failed.
  void failed_attempt(DrawClass c) {
    const double p = det.failed_attempt_detection;
    if (p > 0.0 && rng.bernoulli(c, p))
      record_detection(CampaignEventKind::kFailedExploitDetected);
  }

  void maybe_finish() {
    // Stop once both terminal indicators are known — or once detection
    // triggered incident response (the attacker is frozen, so TTA can
    // never happen).
    if (result.time_to_detection.has_value() &&
        (result.time_to_attack.has_value() || opt.detection_halts_attack))
      stopped = true;
  }

  // --- Attack processes ------------------------------------------------

  [[nodiscard]] bool effective_reach(DrawClass c, NodeId from, NodeId to,
                                     net::Channel ch) {
    // Physical / policy reachability; a denied-by-policy hop can still be
    // attempted through a firewall exploit (tunnelling).
    if (tb.reach->can_reach(from, to, ch)) return true;
    if (ch == net::Channel::kUsb) return false;
    if (!tb.reach->linked(from, to)) return false;
    return rng.bernoulli(c, tb.firewall_bypass_p);
  }

  void deliver(NodeId n, CampaignEventKind kind) {
    state[n] = NodeState::kDelivered;
    if constexpr (kSoA) scan_clean[n] = 0;
    note(n, kind);
    push(0, n, exp_delay(DrawClass::kActivation, tb.activation_rate[n]));
  }

  void on_entry() {
    const NodeId n =
        sc.entry_nodes[rng.below(DrawClass::kEntry, sc.entry_nodes.size())];
    if (state[n] == NodeState::kClean) {
      if (!result.time_of_entry) result.time_of_entry = now;
      deliver(n, CampaignEventKind::kDelivered);
    }
    // Operators keep plugging media in.
    t_entry = exp_in(DrawClass::kEntry, pr.entry_rate);
  }

  void on_activation(NodeId n) {
    if (state[n] != NodeState::kDelivered) return;
    if (rng.bernoulli(DrawClass::kActivation, tb.activation_p[n])) {
      state[n] = NodeState::kActivated;
      if (!(tb.flags[n] & CampaignTables::kFlagPlc)) ++hosts_owned;
      ++activated_count;
      if (!result.time_to_detection && tb.host_detection_rate > 0.0)
        t_host = exp_in(DrawClass::kHostIds,
                        tb.host_detection_rate *
                            static_cast<double>(activated_count));
      note(n, CampaignEventKind::kActivated);
      record_ratio();
      push(1, n, exp_delay(DrawClass::kPrivesc, tb.privesc_rate[n]));
    } else {
      failed_attempt(DrawClass::kActivation);
      push(0, n, exp_delay(DrawClass::kActivation, tb.activation_rate[n]));
    }
  }

  void on_privesc(NodeId n) {
    if (state[n] != NodeState::kActivated) return;
    if (rng.bernoulli(DrawClass::kPrivesc, tb.privesc_p[n])) {
      state[n] = NodeState::kRoot;
      if (!result.first_root) result.first_root = now;
      note(n, CampaignEventKind::kRoot);
      roots.push_back(n);
      scan_slots += tb.scan_w[n] + tb.tunnel_w[n];
      root_cum.push_back(scan_slots);
      if constexpr (kSoA) {
        if (tb.flags[n] & CampaignTables::kFlagMonitoring) ++monitoring_owned;
      }
      t_prop = exp_in(DrawClass::kPropagation,
                      pr.propagation_rate * static_cast<double>(scan_slots) *
                          tb.scan_norm);
      if (tb.flags[n] & CampaignTables::kFlagPayloadSource) {
        payload_sources.push_back(n);
        if (!unowned_targets.empty())
          t_payload =
              exp_in(DrawClass::kPayload,
                     pr.payload_rate *
                         static_cast<double>(payload_sources.size()));
      }
    } else {
      failed_attempt(DrawClass::kPrivesc);
      push(1, n, exp_delay(DrawClass::kPrivesc, tb.privesc_rate[n]));
    }
  }

  void on_propagation() {
    // One candidate firing of the thinned worm-scan process. The model
    // is "every root scans uniform (victim, channel) picks at rate λ" —
    // but ~95% of those scans hit an unreachable pair and change
    // nothing. Poisson thinning makes skipping them exact: the
    // sub-process of scans that land on a *statically possible* pair
    // (reachable, weight 1, or tunnel-linked, later accepted with the
    // bypass probability) is Poisson at rate λ × slots × scan_norm with
    // the pair uniform over the slot ranges, so one weighted word picks
    // root, channel and victim from the precomputed ReachabilityIndex
    // target lists and per-(root, victim, channel) intensities match the
    // unthinned scan exactly. Victim eligibility is then the SoA fast
    // path — one fused scan_clean load instead of two array reads (the
    // lists never contain the owner, so v != n is structural).
    const std::uint64_t x = rng.below(DrawClass::kPropagation, scan_slots);
    const std::size_t ri =
        static_cast<std::size_t>(std::upper_bound(root_cum.begin(),
                                                  root_cum.end(), x) -
                                 root_cum.begin());
    const NodeId n = roots[ri];
    std::uint64_t rem = x - (ri == 0 ? 0 : root_cum[ri - 1]);
    const bool direct = rem < tb.scan_w[n];
    if (!direct) rem -= tb.scan_w[n];
    NodeId v = 0;
    for (const net::Channel c : pr.channels) {
      const auto row = direct ? tb.reach->scan_targets(c, n)
                              : tb.reach->tunnel_targets(c, n);
      if (rem < row.size()) {
        v = row[rem];
        break;
      }
      rem -= row.size();
    }
    bool eligible;
    if constexpr (kSoA) {
      eligible = scan_clean[v] != 0;
    } else {
      eligible = (tb.flags[v] & CampaignTables::kFlagHostTarget) &&
                 state[v] == NodeState::kClean;
    }
    ++scan_candidates;
    if (eligible &&
        (direct || rng.bernoulli(DrawClass::kPropagation, tb.firewall_bypass_p))) {
      ++scan_accepted;
      if (rng.bernoulli(DrawClass::kPropagation, tb.lateral_p[v])) {
        deliver(v, CampaignEventKind::kDeliveredLateral);
      } else {
        failed_attempt(DrawClass::kPropagation);
      }
    }
    t_prop = exp_in(DrawClass::kPropagation,
                    pr.propagation_rate * static_cast<double>(scan_slots) *
                        tb.scan_norm);
  }

  void on_payload() {
    // One push of the aggregate payload process: a rooted
    // engineering/SCADA source tries an unowned target PLC over an
    // engineering or fieldbus channel. Once every target is owned the
    // process disarms — targets never refill, so later firings could
    // only ever be no-ops.
    if (!unowned_targets.empty()) {
      const NodeId n = payload_sources[rng.below(
          DrawClass::kPayload, payload_sources.size())];
      const std::size_t pick =
          rng.below(DrawClass::kPayload, unowned_targets.size());
      const NodeId plc = unowned_targets[pick];
      const bool via_project =
          effective_reach(DrawClass::kPayload, n, plc, net::Channel::kProjectFile);
      const bool via_modbus =
          !via_project &&
          effective_reach(DrawClass::kPayload, n, plc, net::Channel::kModbus);
      if (via_project || via_modbus) {
        const double p = via_modbus ? tb.plc_modbus_p[plc] : tb.plc_direct_p[plc];
        if (rng.bernoulli(DrawClass::kPayload, p)) {
          plc_owned[plc] = 1;
          owned_plcs.push_back(plc);
          // Swap-remove (contract): the pool order feeds later picks,
          // so both kernels shrink it the same O(1) way.
          unowned_targets[pick] = unowned_targets.back();
          unowned_targets.pop_back();
          if (!result.first_plc_compromise) result.first_plc_compromise = now;
          note(plc, CampaignEventKind::kPlcCompromised);
          record_ratio();
          const double owned = static_cast<double>(owned_plcs.size());
          if (!result.time_to_attack)
            t_sabotage =
                exp_in(DrawClass::kSabotage, owned / pr.sabotage_mean_hours);
          if (!result.time_to_detection)
            t_alarm = exp_in(DrawClass::kAlarm, det.alarm_detection_rate * owned);
        } else {
          failed_attempt(DrawClass::kPayload);
        }
      }
    }
    t_payload = unowned_targets.empty()
                    ? kNever
                    : exp_in(DrawClass::kPayload,
                             pr.payload_rate *
                                 static_cast<double>(payload_sources.size()));
  }

  void on_sabotage() {
    // First passage of the aggregate sabotage process: slow physical
    // damage develops on one owned PLC (uniform by symmetry of the
    // constant per-PLC hazards).
    const NodeId plc =
        owned_plcs[rng.below(DrawClass::kSabotage, owned_plcs.size())];
    result.time_to_attack = now;
    note(plc, CampaignEventKind::kDeviceImpaired);
    t_sabotage = kNever;
    maybe_finish();
  }

  // --- Detection processes ----------------------------------------------

  void on_host_detect() {
    // First passage of the aggregate host-IDS process over the activated
    // pool: any activated node suffices to raise the incident.
    record_detection(CampaignEventKind::kHostIdsDetection);
  }

  void on_alarm_detect() {
    // Thinning: poll at the undefended alarm rate (one chain per owned
    // PLC), accept with the current spoof-adjusted probability.
    // Full-strength spoofing needs an owned monitoring view (HMI, SCADA
    // server, or the engineering station running the vendor tools, where
    // Stuxnet actually hooked the s7otbxdx DLL); otherwise replaying
    // recorded signals is only half effective. The SoA kernel keeps the
    // rooted-monitoring count incrementally; the reference scans the
    // root pool — same boolean, no draw either way.
    bool view_owned;
    if constexpr (kSoA) {
      view_owned = monitoring_owned > 0;
    } else {
      view_owned = false;
      for (const NodeId n : roots)
        if (tb.flags[n] & CampaignTables::kFlagMonitoring) {
          view_owned = true;
          break;
        }
    }
    const double spoof = pr.spoof_effectiveness * (view_owned ? 1.0 : 0.5);
    if (rng.bernoulli(DrawClass::kAlarm, 1.0 - spoof)) {
      record_detection(CampaignEventKind::kPlantAlarmDetection);
      return;
    }
    t_alarm = exp_in(DrawClass::kAlarm,
                     det.alarm_detection_rate *
                         static_cast<double>(owned_plcs.size()));
  }

  void run_until(double t_max) {
    t_entry = exp_in(DrawClass::kEntry, pr.entry_rate);
    while (!stopped) {
      // Next event: min over the aggregate clocks and the retry heap.
      // Exact ties are measure-zero (all delays are continuous); the
      // scan order below fixes them deterministically.
      double at = t_entry;
      int which = 0;
      if (t_prop < at) { at = t_prop; which = 1; }
      if (t_payload < at) { at = t_payload; which = 2; }
      if (t_sabotage < at) { at = t_sabotage; which = 3; }
      if (t_host < at) { at = t_host; which = 4; }
      if (t_alarm < at) { at = t_alarm; which = 5; }
      if (!heap.empty() && heap.front().at < at) { at = heap.front().at; which = 6; }
      if (at > t_max) break;  // includes the all-disarmed (kNever) case
      now = at;
      ++result.events_executed;
      switch (which) {
        case 0: on_entry(); break;
        case 1: on_propagation(); break;
        case 2: on_payload(); break;
        case 3: on_sabotage(); break;
        case 4: on_host_detect(); break;
        case 5: on_alarm_detect(); break;
        case 6: {
          const QEvent ev = heap.front();
          std::pop_heap(heap.begin(), heap.end(), QLater{});
          heap.pop_back();
          if (ev.kind == 0)
            on_activation(ev.node);
          else
            on_privesc(ev.node);
          break;
        }
      }
    }
  }
};

/// One striped registry add per tally per run — ~20 relaxed fetch_adds
/// per replication, invisible next to the event loop itself (the
/// bench_e5 obs phase gates this at <= 2% wall).
struct CampaignCounters {
  obs::Counter& runs = obs::counter("campaign.runs");
  obs::Counter& events_executed = obs::counter("campaign.events.executed");
  obs::Counter& scan_candidates = obs::counter("campaign.scan.candidates");
  obs::Counter& scan_accepted = obs::counter("campaign.scan.accepted");
  std::array<obs::Counter*, kEventKindCount> kinds{};
  std::array<obs::Counter*, kDrawClassCount> rng_words{};

  CampaignCounters() {
    for (std::size_t k = 0; k < kEventKindCount; ++k)
      kinds[k] = &obs::counter(std::string("campaign.events.") +
                               to_string(static_cast<CampaignEventKind>(k)));
    static constexpr const char* kClassNames[kDrawClassCount] = {
        "entry",   "activation", "privesc",  "propagation",
        "payload", "sabotage",   "host_ids", "alarm"};
    for (std::size_t c = 0; c < kDrawClassCount; ++c)
      rng_words[c] =
          &obs::counter(std::string("campaign.rng_words.") + kClassNames[c]);
  }

  static const CampaignCounters& instance() {
    static const CampaignCounters counters;
    return counters;
  }
};

template <bool kSoA>
CampaignResult run_kernel(const Scenario& sc, const ThreatProfile& pr,
                          const CampaignTables& tb, const DetectionModel& det,
                          const CampaignOptions& opt, const stats::Rng& base) {
  RunState<kSoA> st(sc, pr, tb, det, opt, base);
  st.run_until(opt.t_max_hours);
  st.result.hosts_compromised = st.hosts_owned;
  st.result.plcs_compromised = st.owned_plcs.size();

  const CampaignCounters& counters = CampaignCounters::instance();
  counters.runs.add(1);
  counters.events_executed.add(st.result.events_executed);
  counters.scan_candidates.add(st.scan_candidates);
  counters.scan_accepted.add(st.scan_accepted);
  for (std::size_t k = 0; k < kEventKindCount; ++k)
    if (st.kind_counts[k]) counters.kinds[k]->add(st.kind_counts[k]);
  const auto words = st.rng.words_drawn();
  for (std::size_t c = 0; c < kDrawClassCount; ++c)
    if (words[c]) counters.rng_words[c]->add(words[c]);
  return std::move(st.result);
}

}  // namespace

CampaignResult CampaignSimulator::run(stats::Rng& rng) const {
  // The facade derives the class streams without consuming base state,
  // so run() leaves `rng` untouched — a (cell, rep) job stays a pure
  // function of Rng(cell.seed, rep).
  if (options_.kernel == CampaignKernel::kScalarReference)
    return run_kernel<false>(scenario_, profile_, *tables_, detection_,
                             options_, rng);
  return run_kernel<true>(scenario_, profile_, *tables_, detection_, options_,
                          rng);
}

Scenario make_scope_cooling_scenario() {
  Scenario sc;
  auto& t = sc.topology;
  using net::Role;
  using net::Zone;
  // Corporate
  const auto ws1 = t.add_node("corp.ws1", Zone::kCorporate, Role::kWorkstation, true);
  const auto ws2 = t.add_node("corp.ws2", Zone::kCorporate, Role::kWorkstation, true);
  const auto mail = t.add_node("corp.server", Zone::kCorporate, Role::kServer, false);
  // DMZ
  const auto mirror = t.add_node("dmz.hist-mirror", Zone::kDmz, Role::kHistorian, false);
  // Control
  const auto scada = t.add_node("ctl.scada", Zone::kControl, Role::kScadaServer, false);
  const auto eng = t.add_node("ctl.eng", Zone::kControl, Role::kEngineering, true);
  const auto hmi = t.add_node("ctl.hmi", Zone::kControl, Role::kHmi, false);
  const auto hist = t.add_node("ctl.historian", Zone::kControl, Role::kHistorian, false);
  // Field
  const auto plc1 = t.add_node("fld.plc-chiller", Zone::kField, Role::kPlc, false);
  const auto plc2 = t.add_node("fld.plc-crac", Zone::kField, Role::kPlc, false);
  const auto gw = t.add_node("fld.sensor-gw", Zone::kField, Role::kSensorGateway, false);

  // Corporate LAN
  t.connect(ws1, ws2);
  t.connect(ws1, mail);
  t.connect(ws2, mail);
  // Corporate <-> DMZ <-> control
  t.connect(mail, mirror);
  t.connect(mirror, hist);
  // Control LAN
  t.connect(scada, eng);
  t.connect(scada, hmi);
  t.connect(scada, hist);
  t.connect(eng, hmi);
  // Control <-> field
  t.connect(scada, plc1);
  t.connect(scada, plc2);
  t.connect(eng, plc1);
  t.connect(eng, plc2);
  t.connect(scada, gw);

  sc.firewall = net::Firewall::segmented_ics();
  sc.firewall_variant = 0;
  sc.software.assign(t.node_count(), NodeSoftware{});
  sc.software[plc1].plc_firmware = 0;
  sc.software[plc2].plc_firmware = 0;
  sc.software[hmi].hmi = 0;
  sc.software[mirror].historian = 0;
  sc.software[hist].historian = 0;
  sc.entry_nodes = {ws1, ws2, eng};
  sc.target_plcs = {plc1, plc2};
  return sc;
}

}  // namespace divsec::attack
