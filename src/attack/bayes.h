// bayes.h — discrete Bayesian networks for attack modeling.
//
// The third formalism the paper names ("Bayesian networks, Petri-nets, or
// attack trees"). Nodes are discrete variables with conditional
// probability tables; inference is exact (enumeration over the joint,
// adequate for attack-sized networks of <= ~20 binary nodes).
//
// make_attack_bayesian_network() compiles a StagedAttackModel into the
// classic attack-BN shape: a chain of per-stage "stage completed within
// its time budget" variables plus a noisy-OR Detected variable, so the
// same attack formalization can be queried statically (P[impaired],
// P[detected | impaired], most-probable explanation of an observation)
// where the SAN gives trajectories.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "attack/stages.h"

namespace divsec::attack {

class BayesianNetwork {
 public:
  using NodeId = std::size_t;

  /// Add a node with `states` possible values and the given parents
  /// (which must already exist — the network is built in topological
  /// order). `cpt` holds P[node = s | parent assignment], laid out with
  /// the node's state fastest, then parents in mixed radix (parent 0
  /// fastest): cpt[assignment_index * states + s]. Each conditional
  /// distribution must sum to 1.
  NodeId add_node(std::string name, std::size_t states,
                  std::vector<NodeId> parents, std::vector<double> cpt);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::string& name(NodeId n) const { return nodes_.at(n).name; }
  [[nodiscard]] std::size_t states(NodeId n) const { return nodes_.at(n).states; }
  [[nodiscard]] NodeId node_by_name(const std::string& name) const;

  /// Joint probability of a complete assignment (one state per node).
  [[nodiscard]] double joint(std::span<const int> assignment) const;

  /// Exact posterior P[target | evidence] by enumeration.
  struct Evidence {
    NodeId node;
    int state;
  };
  [[nodiscard]] std::vector<double> posterior(NodeId target,
                                              std::span<const Evidence> evidence = {}) const;

  /// Marginal P[node = state].
  [[nodiscard]] double marginal(NodeId node, int state) const;

  /// Most probable complete assignment consistent with the evidence
  /// (argmax over the joint; ties broken toward lower states).
  [[nodiscard]] std::vector<int> most_probable_explanation(
      std::span<const Evidence> evidence = {}) const;

 private:
  struct Node {
    std::string name;
    std::size_t states;
    std::vector<NodeId> parents;
    std::vector<double> cpt;
  };
  [[nodiscard]] double node_prob(NodeId n, std::span<const int> assignment) const;
  void check_enumerable() const;

  std::vector<Node> nodes_;
};

/// Attack BN compiled from the staged model. Binary stage variables
/// S0..S4 ("stage transition completed within its time budget"), chained;
/// Detected with a noisy-OR over the stages' detection exposure.
/// `horizon_hours` is split evenly across stages for the per-stage budget
/// (a deliberate static abstraction; see DESIGN.md).
struct AttackBayesianNetwork {
  BayesianNetwork network;
  std::array<BayesianNetwork::NodeId, kStageCount> stage_node{};
  BayesianNetwork::NodeId detected_node = 0;

  /// P[final stage completed] — the static analogue of attack success.
  [[nodiscard]] double impairment_probability() const;
  /// P[detected].
  [[nodiscard]] double detection_probability() const;
  /// P[detected | final stage completed]: how observable a *successful*
  /// attack was.
  [[nodiscard]] double detection_given_impairment() const;
};

[[nodiscard]] AttackBayesianNetwork make_attack_bayesian_network(
    const StagedAttackModel& model, double horizon_hours);

}  // namespace divsec::attack
