// attack_tree.h — AND/OR attack trees.
//
// One of the three modeling formalisms the paper names ("Bayesian
// networks, Petri-nets, or attack trees"). Leaves are basic attack steps
// with a success probability, an expected time and a resource cost;
// internal nodes combine children with AND (all required, sequential) or
// OR (any one suffices). The tree answers the paper's "effort it takes to
// conduct a successful attack (in terms of attack resources and time)":
// success probability, cheapest cut, fastest cut, and the enumeration of
// minimal attack scenarios (cut sets).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace divsec::attack {

class AttackTree {
 public:
  using NodeId = std::size_t;

  enum class GateKind : std::uint8_t { kLeaf, kAnd, kOr };

  /// Add a basic attack step.
  NodeId add_leaf(std::string name, double probability, double time_hours,
                  double cost);

  /// Add an AND gate over existing children (all must succeed; times and
  /// costs add).
  NodeId add_and(std::string name, std::vector<NodeId> children);

  /// Add an OR gate over existing children (any suffices; attacker picks
  /// the best child).
  NodeId add_or(std::string name, std::vector<NodeId> children);

  void set_root(NodeId id);
  [[nodiscard]] NodeId root() const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::string& name(NodeId id) const { return nodes_.at(id).name; }
  [[nodiscard]] GateKind kind(NodeId id) const { return nodes_.at(id).kind; }

  /// Success probability assuming independent leaves: AND multiplies,
  /// OR complements (1 - prod(1 - p)).
  [[nodiscard]] double success_probability() const;

  /// Minimum total cost of a successful scenario (OR: min child; AND: sum).
  [[nodiscard]] double min_cost() const;

  /// Minimum total time of a successful scenario (sequential attacker:
  /// AND sums, OR takes the fastest child).
  [[nodiscard]] double min_time() const;

  /// All minimal attack scenarios (cut sets) as lists of leaf ids.
  /// Throws std::length_error if more than `limit` scenarios exist.
  [[nodiscard]] std::vector<std::vector<NodeId>> attack_scenarios(
      std::size_t limit = 10000) const;

  /// Multiply the probability of every leaf whose name contains
  /// `name_substring` by `factor` (clamped to [0,1]): the hook used to
  /// model swapping in a more resilient component variant.
  void scale_leaf_probabilities(const std::string& name_substring, double factor);

 private:
  struct Node {
    std::string name;
    GateKind kind = GateKind::kLeaf;
    double probability = 0.0;  // leaves
    double time_hours = 0.0;   // leaves
    double cost = 0.0;         // leaves
    std::vector<NodeId> children;
  };

  [[nodiscard]] double probability_of(NodeId id) const;
  [[nodiscard]] double cost_of(NodeId id) const;
  [[nodiscard]] double time_of(NodeId id) const;
  void scenarios_of(NodeId id, std::vector<std::vector<NodeId>>& out,
                    std::size_t limit) const;
  void check_acyclic() const;

  std::vector<Node> nodes_;
  NodeId root_ = static_cast<NodeId>(-1);
};

/// The canonical Stuxnet-shaped tree over the paper's five stages, with
/// per-stage leaf probabilities supplied by the caller (typically from
/// VariantCatalog::exploit_success for a given configuration).
[[nodiscard]] AttackTree make_staged_attack_tree(double p_delivery, double p_activation,
                                                 double p_privesc, double p_propagation,
                                                 double p_plc_payload);

}  // namespace divsec::attack
