#include "attack/bayes.h"

#include <cmath>
#include <stdexcept>

namespace divsec::attack {

BayesianNetwork::NodeId BayesianNetwork::add_node(std::string name,
                                                  std::size_t states,
                                                  std::vector<NodeId> parents,
                                                  std::vector<double> cpt) {
  if (name.empty()) throw std::invalid_argument("add_node: empty name");
  if (states < 2) throw std::invalid_argument("add_node: need >= 2 states");
  std::size_t parent_combos = 1;
  for (NodeId p : parents) {
    if (p >= nodes_.size())
      throw std::out_of_range("add_node: parent must precede child");
    parent_combos *= nodes_[p].states;
  }
  if (cpt.size() != parent_combos * states)
    throw std::invalid_argument("add_node: CPT size mismatch for '" + name + "'");
  for (std::size_t a = 0; a < parent_combos; ++a) {
    double sum = 0.0;
    for (std::size_t s = 0; s < states; ++s) {
      const double v = cpt[a * states + s];
      if (v < 0.0 || v > 1.0)
        throw std::invalid_argument("add_node: CPT entry outside [0,1]");
      sum += v;
    }
    if (std::fabs(sum - 1.0) > 1e-9)
      throw std::invalid_argument("add_node: CPT row of '" + name +
                                  "' does not sum to 1");
  }
  nodes_.push_back(Node{std::move(name), states, std::move(parents), std::move(cpt)});
  return nodes_.size() - 1;
}

BayesianNetwork::NodeId BayesianNetwork::node_by_name(const std::string& name) const {
  for (NodeId n = 0; n < nodes_.size(); ++n)
    if (nodes_[n].name == name) return n;
  throw std::out_of_range("node_by_name: no node named '" + name + "'");
}

double BayesianNetwork::node_prob(NodeId n, std::span<const int> assignment) const {
  const Node& node = nodes_[n];
  std::size_t idx = 0;
  for (std::size_t pi = node.parents.size(); pi-- > 0;) {
    const NodeId p = node.parents[pi];
    idx = idx * nodes_[p].states + static_cast<std::size_t>(assignment[p]);
  }
  return node.cpt[idx * node.states + static_cast<std::size_t>(assignment[n])];
}

double BayesianNetwork::joint(std::span<const int> assignment) const {
  if (assignment.size() != nodes_.size())
    throw std::invalid_argument("joint: assignment arity mismatch");
  for (NodeId n = 0; n < nodes_.size(); ++n)
    if (assignment[n] < 0 || static_cast<std::size_t>(assignment[n]) >= nodes_[n].states)
      throw std::out_of_range("joint: state out of range");
  double p = 1.0;
  for (NodeId n = 0; n < nodes_.size(); ++n) p *= node_prob(n, assignment);
  return p;
}

void BayesianNetwork::check_enumerable() const {
  double combos = 1.0;
  for (const auto& n : nodes_) combos *= static_cast<double>(n.states);
  if (combos > 4e6)
    throw std::logic_error(
        "BayesianNetwork: joint too large for enumeration inference");
}

std::vector<double> BayesianNetwork::posterior(NodeId target,
                                               std::span<const Evidence> evidence) const {
  if (target >= nodes_.size()) throw std::out_of_range("posterior: invalid target");
  check_enumerable();
  for (const auto& e : evidence) {
    if (e.node >= nodes_.size()) throw std::out_of_range("posterior: bad evidence node");
    if (e.state < 0 || static_cast<std::size_t>(e.state) >= nodes_[e.node].states)
      throw std::out_of_range("posterior: bad evidence state");
  }
  std::vector<double> dist(nodes_[target].states, 0.0);
  std::vector<int> assignment(nodes_.size(), 0);
  // Odometer over the full joint.
  for (;;) {
    bool consistent = true;
    for (const auto& e : evidence)
      if (assignment[e.node] != e.state) {
        consistent = false;
        break;
      }
    if (consistent) {
      double p = 1.0;
      for (NodeId n = 0; n < nodes_.size() && p > 0.0; ++n)
        p *= node_prob(n, assignment);
      dist[static_cast<std::size_t>(assignment[target])] += p;
    }
    // Advance the odometer.
    std::size_t n = 0;
    for (; n < nodes_.size(); ++n) {
      if (static_cast<std::size_t>(++assignment[n]) < nodes_[n].states) break;
      assignment[n] = 0;
    }
    if (n == nodes_.size()) break;
  }
  double total = 0.0;
  for (double v : dist) total += v;
  if (total <= 0.0)
    throw std::invalid_argument("posterior: evidence has probability zero");
  for (double& v : dist) v /= total;
  return dist;
}

double BayesianNetwork::marginal(NodeId node, int state) const {
  const auto dist = posterior(node, {});
  return dist.at(static_cast<std::size_t>(state));
}

std::vector<int> BayesianNetwork::most_probable_explanation(
    std::span<const Evidence> evidence) const {
  check_enumerable();
  std::vector<int> assignment(nodes_.size(), 0);
  std::vector<int> best(nodes_.size(), 0);
  double best_p = -1.0;
  for (;;) {
    bool consistent = true;
    for (const auto& e : evidence)
      if (assignment[e.node] != e.state) {
        consistent = false;
        break;
      }
    if (consistent) {
      double p = 1.0;
      for (NodeId n = 0; n < nodes_.size() && p > best_p; ++n)
        p *= node_prob(n, assignment);
      if (p > best_p) {
        best_p = p;
        best = assignment;
      }
    }
    std::size_t n = 0;
    for (; n < nodes_.size(); ++n) {
      if (static_cast<std::size_t>(++assignment[n]) < nodes_[n].states) break;
      assignment[n] = 0;
    }
    if (n == nodes_.size()) break;
  }
  if (best_p < 0.0)
    throw std::invalid_argument("most_probable_explanation: impossible evidence");
  return best;
}

namespace {

/// P[stage transition completes within its budget AND before its own
/// detection]: the winner of an exponential race, truncated at T.
double stage_success_within(const StageTransition& t, double extra_detection,
                            double budget_hours) {
  const double adv = t.attempt_rate * t.success_probability;
  const double det = t.detection_rate + extra_detection;
  if (adv <= 0.0) return 0.0;
  const double total = adv + det;
  return (adv / total) * -std::expm1(-total * budget_hours);
}

/// P[detection fires during a stage's activity window].
double stage_detection_within(const StageTransition& t, double extra_detection,
                              double budget_hours) {
  const double det = t.detection_rate + extra_detection;
  return -std::expm1(-det * budget_hours);
}

}  // namespace

double AttackBayesianNetwork::impairment_probability() const {
  return network.marginal(stage_node.back(), 1);
}

double AttackBayesianNetwork::detection_probability() const {
  return network.marginal(detected_node, 1);
}

double AttackBayesianNetwork::detection_given_impairment() const {
  const BayesianNetwork::Evidence e{stage_node.back(), 1};
  return network.posterior(detected_node, std::span(&e, 1))[1];
}

AttackBayesianNetwork make_attack_bayesian_network(const StagedAttackModel& model,
                                                   double horizon_hours) {
  if (!(horizon_hours > 0.0))
    throw std::invalid_argument("make_attack_bayesian_network: horizon must be > 0");
  model.validate();
  AttackBayesianNetwork out;
  const double budget = horizon_hours / static_cast<double>(kStageCount);

  for (std::size_t i = 0; i < kStageCount; ++i) {
    const double extra = (i == kStageCount - 1) ? model.impairment_detection_rate : 0.0;
    const double p = stage_success_within(model.transitions[i], extra, budget);
    std::vector<double> cpt;
    if (i == 0) {
      cpt = {1.0 - p, p};
    } else {
      // parent (previous stage) = 0: cannot even attempt.
      cpt = {1.0, 0.0, 1.0 - p, p};
    }
    std::vector<BayesianNetwork::NodeId> parents;
    if (i > 0) parents.push_back(out.stage_node[i - 1]);
    out.stage_node[i] = out.network.add_node(
        std::string("stage.") + to_string(static_cast<Stage>(i)), 2,
        std::move(parents), std::move(cpt));
  }

  // Detected: noisy-OR over the stages that were actually attempted.
  // A stage is attempted iff its predecessor completed (stage 0 always).
  std::vector<BayesianNetwork::NodeId> parents(out.stage_node.begin(),
                                               out.stage_node.end());
  const std::size_t combos = std::size_t{1} << kStageCount;
  std::vector<double> cpt(combos * 2);
  for (std::size_t a = 0; a < combos; ++a) {
    double p_none = 1.0;
    for (std::size_t i = 0; i < kStageCount; ++i) {
      const bool attempted = (i == 0) || ((a >> (i - 1)) & 1);
      if (!attempted) continue;
      const double extra =
          (i == kStageCount - 1) ? model.impairment_detection_rate : 0.0;
      p_none *= 1.0 - stage_detection_within(model.transitions[i], extra, budget);
    }
    cpt[a * 2 + 0] = p_none;
    cpt[a * 2 + 1] = 1.0 - p_none;
  }
  out.detected_node =
      out.network.add_node("detected", 2, std::move(parents), std::move(cpt));
  return out;
}

}  // namespace divsec::attack
