// campaign_rng.h — the batched per-event-class RNG facade of the
// campaign kernel, and the ziggurat exponential sampler behind it.
//
// THE DRAW-ORDER CONTRACT (part of the reproducibility contract since
// the SoA kernel; tests/test_soa_campaign.cpp pins it):
//
// A campaign replication no longer consumes words directly from its
// stats::Rng(cell.seed, rep) stream. Instead the facade derives one
// child stream per event class with Rng::stream(class id) — derivation
// does not consume base state — and every random decision of the run
// draws from the stream of the event class that owns it:
//
//   id  class         draws owned by the class
//   --  ------------  -------------------------------------------------
//   0   entry         entry-node pick; t_entry exponentials
//   1   activation    activation delay exponentials (first + retries),
//                     activation success Bernoulli, failed-attempt
//                     detection Bernoulli after a failed activation
//   2   privesc       privesc delay exponentials, success Bernoulli,
//                     failed-attempt Bernoulli after a failed privesc
//   3   propagation   t_prop exponentials; the thinned-scan slot pick
//                     (ONE weighted word selecting root, channel and
//                     victim from the ReachabilityIndex scan/tunnel
//                     target lists); firewall-bypass Bernoulli of
//                     tunnel-slot scans on eligible victims; lateral
//                     success Bernoulli; failed-attempt Bernoulli after
//                     a failed lateral
//   4   payload       t_payload exponentials; source / target picks;
//                     firewall-bypass Bernoullis of the payload reach
//                     tests; payload success Bernoulli; failed-attempt
//                     Bernoulli after a failed payload
//   5   sabotage      t_sabotage exponentials; sabotaged-PLC pick
//   6   host-IDS      t_host exponentials
//   7   plant-alarm   t_alarm exponentials; spoof-thinning Bernoulli
//
// Within a class, words are consumed strictly in call order. The facade
// may prefetch words per class in blocks of any size: batching never
// reorders a class's word sequence, so every block size (including 1,
// the scalar reference) produces bit-identical results. A (cell, rep)
// job therefore remains a pure function of Rng(cell.seed, rep) — the
// DIVSEC_THREADS / schedule / process-split contract of the engine —
// while the kernel is free to reorder work across classes.
//
// Exponentials are sampled with a 256-layer Marsaglia–Tsang ziggurat
// (one word + one table compare on the common path, vs. a libm log()
// per draw before), shared by the batched and the scalar reference
// kernel so both consume identical words.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "stats/rng.h"

// Per-class draw accounting (telemetry only; plain members, no atomics)
// compiles out with the rest of the obs:: hot path.
#if !defined(DIVSEC_OBS)
#define DIVSEC_OBS 1
#endif

namespace divsec::attack {

/// Event classes of the campaign draw-order contract. The numeric values
/// are the Rng::stream() ids — fixed, documented above, pinned by tests.
enum class DrawClass : std::uint8_t {
  kEntry = 0,
  kActivation = 1,
  kPrivesc = 2,
  kPropagation = 3,
  kPayload = 4,
  kSabotage = 5,
  kHostIds = 6,
  kAlarm = 7,
};

inline constexpr std::size_t kDrawClassCount = 8;

/// Words prefetched per class by the batched kernel. Pure performance
/// tuning — NOT part of the determinism contract (any block size yields
/// the same per-class word sequence, hence identical results).
inline constexpr std::size_t kDefaultDrawBlock = 64;

/// 256-layer ziggurat for Exp(1) (Marsaglia & Tsang, "The Ziggurat
/// Method for Generating Random Variables", JSS 2000), widened to a
/// 53-bit uniform per layer: the common path is one 64-bit word, one
/// table compare and one multiply. Layer index and uniform bits come
/// from disjoint bits of the word (the original shares the low byte).
class ZigguratExp {
 public:
  ZigguratExp() noexcept {
    constexpr double m = 9007199254740992.0;  // 2^53
    double de = kTail, te = kTail;
    constexpr double ve = 3.949659822581572e-3;  // layer area
    const double q = ve / std::exp(-de);
    ke_[0] = static_cast<std::uint64_t>((de / q) * m);
    ke_[1] = 0;
    we_[0] = q / m;
    we_[255] = de / m;
    fe_[0] = 1.0;
    fe_[255] = std::exp(-de);
    for (int i = 254; i >= 1; --i) {
      de = -std::log(ve / de + std::exp(-de));
      ke_[i + 1] = static_cast<std::uint64_t>((de / te) * m);
      te = de;
      fe_[i] = std::exp(-de);
      we_[i] = de / m;
    }
  }

  /// Sample Exp(1) from a 64-bit word source (called once on the common
  /// path; the rejection / tail path pulls more words).
  template <typename NextWord>
  [[nodiscard]] double operator()(NextWord&& next) const {
    for (;;) {
      const std::uint64_t w = next();
      const std::size_t i = w & 255u;
      const std::uint64_t j = w >> 11;  // 53-bit uniform, disjoint bits
      if (j < ke_[i]) return static_cast<double>(j) * we_[i];
      if (i == 0) return kTail - std::log(1.0 - u01(next()));  // tail: r + Exp(1)
      const double x = static_cast<double>(j) * we_[i];
      if (fe_[i] + u01(next()) * (fe_[i - 1] - fe_[i]) < std::exp(-x)) return x;
    }
  }

  static const ZigguratExp& instance() noexcept {
    static const ZigguratExp z;
    return z;
  }

 private:
  static constexpr double kTail = 7.697117470131487;
  [[nodiscard]] static double u01(std::uint64_t w) noexcept {
    return static_cast<double>(w >> 11) * 0x1.0p-53;
  }
  std::array<std::uint64_t, 256> ke_{};
  std::array<double, 256> we_{};
  std::array<double, 256> fe_{};
};

/// The per-class draw facade over one replication's base stream. One
/// instance per run(); not thread-safe (a run is single-threaded).
class CampaignRng {
 public:
  /// Derives the kDrawClassCount class streams from `base` (base state
  /// is not consumed). `block` is the per-class prefetch depth; 1 is the
  /// scalar reference configuration.
  explicit CampaignRng(const stats::Rng& base,
                       std::size_t block = kDefaultDrawBlock)
      : block_(block ? block : 1), buf_(kDrawClassCount * block_) {
    for (std::size_t c = 0; c < kDrawClassCount; ++c) {
      lanes_[c].rng = base.stream(c);
      lanes_[c].pos = block_;  // empty: refill on first next()
    }
  }

  /// Next raw word of the class stream, in strict per-class call order.
  [[nodiscard]] std::uint64_t next(DrawClass c) noexcept {
    Lane& lane = lanes_[static_cast<std::size_t>(c)];
    if (lane.pos == block_) {
      std::uint64_t* b = buf_.data() + static_cast<std::size_t>(c) * block_;
      for (std::size_t i = 0; i < block_; ++i) b[i] = lane.rng();
      lane.pos = 0;
    }
#if DIVSEC_OBS
    ++lane.drawn;
#endif
    return buf_[static_cast<std::size_t>(c) * block_ + lane.pos++];
  }

  /// Words actually consumed per class this run (not prefetch refills) —
  /// the obs:: correctness probe for the draw-ownership table above.
  /// All zeros when the telemetry hot path is compiled out.
  [[nodiscard]] std::array<std::uint64_t, kDrawClassCount> words_drawn()
      const noexcept {
    std::array<std::uint64_t, kDrawClassCount> out{};
#if DIVSEC_OBS
    for (std::size_t c = 0; c < kDrawClassCount; ++c) out[c] = lanes_[c].drawn;
#endif
    return out;
  }

  /// Uniform double in [0, 1), 53 bits (same mapping as Rng::uniform()).
  [[nodiscard]] double uniform(DrawClass c) noexcept {
    return static_cast<double>(next(c) >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n), Lemire nearly-divisionless (same
  /// algorithm as Rng::below; rejection may consume extra words).
  [[nodiscard]] std::uint64_t below(DrawClass c, std::uint64_t n) noexcept {
    std::uint64_t x = next(c);
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next(c);
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  [[nodiscard]] bool bernoulli(DrawClass c, double p) noexcept {
    return uniform(c) < p;
  }

  /// Standard exponential (mean 1) via the shared ziggurat.
  [[nodiscard]] double exp_std(DrawClass c) noexcept {
    return ZigguratExp::instance()([this, c] { return next(c); });
  }

 private:
  struct Lane {
    stats::Rng rng{0, 0};
    std::size_t pos = 0;  // == block_ => empty, refill on next()
#if DIVSEC_OBS
    std::uint64_t drawn = 0;  // words handed out (telemetry only)
#endif
  };

  std::size_t block_;
  std::vector<std::uint64_t> buf_;
  std::array<Lane, kDrawClassCount> lanes_;
};

}  // namespace divsec::attack
