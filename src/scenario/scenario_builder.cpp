#include "scenario/scenario_builder.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

#include "stats/rng.h"

namespace divsec::scenario {

using divers::ComponentKind;
using net::NodeId;
using net::Role;
using net::Zone;

const char* to_string(VariantPolicy p) noexcept {
  switch (p) {
    case VariantPolicy::kMonoculture: return "monoculture";
    case VariantPolicy::kZoneStratified: return "zone-stratified";
    case VariantPolicy::kRandomPerNode: return "random-per-node";
    case VariantPolicy::kBalancedRotation: return "balanced-rotation";
  }
  return "?";
}

ScenarioBuilder::ScenarioBuilder(net::Topology topology,
                                 const divers::VariantCatalog& catalog)
    : topology_(std::move(topology)),
      catalog_(&catalog),
      firewall_(net::Firewall::segmented_ics()) {
  if (topology_.node_count() == 0)
    throw std::invalid_argument("ScenarioBuilder: empty topology");
}

ScenarioBuilder& ScenarioBuilder::firewall(net::Firewall fw) {
  firewall_ = std::move(fw);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::variant_policy(VariantPolicy policy) {
  policy_ = policy;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::firewall_variant(std::size_t v) {
  firewall_variant_ = v;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::max_sabotage_targets(std::size_t n) {
  max_targets_ = n;
  return *this;
}

namespace {

/// Seeded (kind, zone) -> variant table for kZoneStratified. Draw order
/// is fixed (kind-major, zone-minor) so assignments are reproducible.
struct ZoneTable {
  std::array<std::array<std::size_t, net::kZoneCount>, divers::kComponentKindCount>
      variant{};

  ZoneTable(const divers::VariantCatalog& cat, stats::Rng& rng) {
    for (ComponentKind kind : divers::all_component_kinds())
      for (std::size_t z = 0; z < net::kZoneCount; ++z)
        variant[static_cast<std::size_t>(kind)][z] = rng.below(cat.count(kind));
  }

  [[nodiscard]] std::size_t operator()(ComponentKind kind, Zone zone) const {
    return variant[static_cast<std::size_t>(kind)][static_cast<std::size_t>(zone)];
  }
};

/// Seeded per-kind variant permutations plus rotation counters for
/// kBalancedRotation. Permutations are drawn up front (kind-major,
/// Fisher-Yates) and the counters advance once per assignment in node-id
/// / slot order, so each kind's variants are dealt out maximally evenly
/// and the whole assignment stays a pure function of (topology, seed).
struct RotationTable {
  std::array<std::vector<std::size_t>, divers::kComponentKindCount> perm;
  std::array<std::size_t, divers::kComponentKindCount> next{};

  RotationTable(const divers::VariantCatalog& cat, stats::Rng& rng) {
    for (ComponentKind kind : divers::all_component_kinds()) {
      std::vector<std::size_t>& p = perm[static_cast<std::size_t>(kind)];
      p.resize(cat.count(kind));
      for (std::size_t i = 0; i < p.size(); ++i) p[i] = i;
      for (std::size_t i = 0; i + 1 < p.size(); ++i)
        std::swap(p[i], p[i + rng.below(p.size() - i)]);
    }
  }

  [[nodiscard]] std::size_t operator()(ComponentKind kind) {
    const std::size_t k = static_cast<std::size_t>(kind);
    return perm[k][next[k]++ % perm[k].size()];
  }
};

}  // namespace

GeneratedScenario ScenarioBuilder::build(std::string name,
                                         std::uint64_t seed) const {
  const divers::VariantCatalog& cat = *catalog_;
  stats::Rng root(seed);
  stats::Rng assign_rng = root.stream(3);
  stats::Rng target_rng = root.stream(4);

  GeneratedScenario out;
  out.name = std::move(name);
  attack::Scenario& sc = out.scenario;
  sc.topology = topology_;
  sc.firewall = firewall_;

  const std::size_t n = sc.topology.node_count();
  sc.software.assign(n, attack::NodeSoftware{});

  // The zone-stratified table is drawn up front (fixed draw order);
  // per-node draws then walk nodes in id order with a fixed slot order,
  // so an assignment is a pure function of (topology, catalog, seed).
  std::optional<ZoneTable> zones;
  if (policy_ == VariantPolicy::kZoneStratified) zones.emplace(cat, assign_rng);
  std::optional<RotationTable> rotation;
  if (policy_ == VariantPolicy::kBalancedRotation) rotation.emplace(cat, assign_rng);

  const auto pick = [&](ComponentKind kind, Zone zone) -> std::size_t {
    switch (policy_) {
      case VariantPolicy::kMonoculture: return 0;
      case VariantPolicy::kZoneStratified: return (*zones)(kind, zone);
      case VariantPolicy::kRandomPerNode: return assign_rng.below(cat.count(kind));
      case VariantPolicy::kBalancedRotation: return (*rotation)(kind);
    }
    return 0;
  };

  for (NodeId i = 0; i < n; ++i) {
    const net::Node& node = sc.topology.node(i);
    attack::NodeSoftware& sw = sc.software[i];
    sw.os = pick(ComponentKind::kOs, node.zone);
    sw.protocol = pick(ComponentKind::kProtocolStack, node.zone);
    if (node.role == Role::kPlc)
      sw.plc_firmware = pick(ComponentKind::kPlcFirmware, node.zone);
    if (node.role == Role::kHmi)
      sw.hmi = pick(ComponentKind::kHmiSoftware, node.zone);
    if (node.role == Role::kHistorian)
      sw.historian = pick(ComponentKind::kHistorianDb, node.zone);
  }

  if (firewall_variant_) {
    sc.firewall_variant = *firewall_variant_;
  } else if (policy_ == VariantPolicy::kMonoculture) {
    sc.firewall_variant = 0;
  } else {
    sc.firewall_variant =
        assign_rng.below(cat.count(ComponentKind::kFirewallFirmware));
  }

  // Entry nodes: wherever operators plug removable media in.
  for (NodeId i = 0; i < n; ++i)
    if (sc.topology.node(i).usb_exposure) sc.entry_nodes.push_back(i);

  // Sabotage targets: every PLC, optionally a seeded sample.
  const std::vector<NodeId> all_plcs = sc.topology.nodes_with_role(Role::kPlc);
  std::vector<NodeId> plcs = all_plcs;
  if (max_targets_ > 0 && max_targets_ < plcs.size()) {
    // Partial Fisher-Yates, then restore id order.
    for (std::size_t i = 0; i < max_targets_; ++i)
      std::swap(plcs[i], plcs[i + target_rng.below(plcs.size() - i)]);
    plcs.resize(max_targets_);
    std::sort(plcs.begin(), plcs.end());
  }
  sc.target_plcs = std::move(plcs);

  // DoE components over the fleet, mirroring the paper case study's
  // seven-factor shape. Node-bound components with no nodes are dropped
  // (e.g. no HMIs on a two-machine rig).
  const auto add_component = [&](const char* cname, ComponentKind kind,
                                 std::vector<NodeId> nodes) {
    if (kind != ComponentKind::kFirewallFirmware && nodes.empty()) return;
    out.components.push_back({cname, kind, std::move(nodes)});
  };
  std::vector<NodeId> corp_os, ctl_os, proto, hmis, hists;
  for (NodeId i = 0; i < n; ++i) {
    const net::Node& node = sc.topology.node(i);
    if (node.zone == Zone::kCorporate || node.zone == Zone::kDmz)
      corp_os.push_back(i);
    if (node.zone == Zone::kControl) ctl_os.push_back(i);
    if (node.role == Role::kPlc || node.role == Role::kSensorGateway ||
        node.role == Role::kScadaServer)
      proto.push_back(i);
    if (node.role == Role::kHmi) hmis.push_back(i);
    if (node.role == Role::kHistorian) hists.push_back(i);
  }
  add_component("os.corporate", ComponentKind::kOs, std::move(corp_os));
  add_component("os.control", ComponentKind::kOs, std::move(ctl_os));
  add_component("plc.firmware", ComponentKind::kPlcFirmware, all_plcs);
  add_component("protocol.stack", ComponentKind::kProtocolStack, std::move(proto));
  add_component("firewall", ComponentKind::kFirewallFirmware, {});
  add_component("hmi.software", ComponentKind::kHmiSoftware, std::move(hmis));
  add_component("historian.db", ComponentKind::kHistorianDb, std::move(hists));

  sc.validate(cat);
  return out;
}

}  // namespace divsec::scenario
