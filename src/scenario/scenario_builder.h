// scenario_builder.h — topology + catalog -> runnable attack scenario.
//
// Bridges the generated (or hand-built) net::Topology to everything the
// measurement stack needs: per-node software slots filled by role, entry
// nodes derived from removable-media exposure, sabotage targets, a
// firewall policy, a seeded variant assignment drawn from the
// VariantCatalog, and the core::Component grouping that exposes the
// fleet to the DoE machinery. The output GeneratedScenario is the unit
// the preset registry returns and the fleet sweep flavour of
// core::MeasurementEngine consumes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/configuration.h"

namespace divsec::scenario {

/// How deployed variants are assigned across a generated fleet.
enum class VariantPolicy : std::uint8_t {
  /// Baseline (index 0) everywhere: the monoculture the paper argues
  /// against, and the control arm of every fleet experiment.
  kMonoculture,
  /// One seeded variant per (component kind, zone): the "managed
  /// diversity" a real operator can actually administer.
  kZoneStratified,
  /// Independent seeded per-node draws: the maximum-entropy deployment.
  kRandomPerNode,
  /// Round-robin through a seeded per-kind variant permutation, in node
  /// id order: every variant of a kind gets an equal share (counts
  /// differ by at most one). The procurement-quota deployment — an
  /// operator buying equal lots of each product — and the
  /// maximum-evenness contrast to kRandomPerNode's multinomial spread.
  kBalancedRotation,
};

[[nodiscard]] const char* to_string(VariantPolicy p) noexcept;

/// A generated system plus its DoE view.
struct GeneratedScenario {
  std::string name;
  attack::Scenario scenario;
  /// Component grouping over the fleet (corporate OS, control OS, PLC
  /// firmware, protocol stack, firewall, HMI software, historian DB) —
  /// the same seven-factor shape the paper's case study uses, so the
  /// existing pipeline/DoE code runs unchanged on generated fleets.
  std::vector<core::Component> components;

  [[nodiscard]] core::SystemDescription make_description(
      const divers::VariantCatalog& catalog) const {
    return core::SystemDescription(scenario, components, catalog);
  }
};

class ScenarioBuilder {
 public:
  /// The catalog must outlive the builder and the built scenarios.
  ScenarioBuilder(net::Topology topology, const divers::VariantCatalog& catalog);

  /// Firewall policy (default: net::Firewall::segmented_ics()).
  ScenarioBuilder& firewall(net::Firewall fw);

  /// Variant assignment policy (default: kMonoculture).
  ScenarioBuilder& variant_policy(VariantPolicy policy);

  /// Pin the zone firewall's firmware variant (default: 0 under
  /// kMonoculture, seeded draw under the other policies).
  ScenarioBuilder& firewall_variant(std::size_t v);

  /// Cap the number of sabotage-target PLCs (seeded sample without
  /// replacement; 0 = every PLC is a target, the default).
  ScenarioBuilder& max_sabotage_targets(std::size_t n);

  /// Assemble and validate. Deterministic in `seed`; the variant draws
  /// use substreams of Rng(seed) so the same fleet under two policies
  /// differs only in the assignment.
  [[nodiscard]] GeneratedScenario build(std::string name, std::uint64_t seed) const;

 private:
  net::Topology topology_;
  const divers::VariantCatalog* catalog_;
  net::Firewall firewall_;
  VariantPolicy policy_ = VariantPolicy::kMonoculture;
  std::optional<std::size_t> firewall_variant_;
  std::size_t max_targets_ = 0;
};

}  // namespace divsec::scenario
