#include "scenario/topology_generator.h"

#include <stdexcept>
#include <string>

#include "stats/rng.h"

namespace divsec::scenario {

using net::NodeId;
using net::Role;
using net::Zone;

void FleetSpec::validate() const {
  if (corporate_workstations == 0)
    throw std::invalid_argument("FleetSpec: need >= 1 corporate workstation");
  if (corporate_servers == 0)
    throw std::invalid_argument("FleetSpec: need >= 1 corporate server");
  if (dmz_historians == 0)
    throw std::invalid_argument("FleetSpec: need >= 1 DMZ historian");
  if (control_sites == 0)
    throw std::invalid_argument("FleetSpec: need >= 1 control site");
  if (plc_cells_per_site == 0 || plcs_per_cell == 0)
    throw std::invalid_argument("FleetSpec: need >= 1 PLC per site");
  if (!(workstation_usb_fraction >= 0.0 && workstation_usb_fraction <= 1.0))
    throw std::invalid_argument("FleetSpec: usb fraction must be in [0,1]");
}

TopologyGenerator::TopologyGenerator(FleetSpec spec) : spec_(spec) {
  spec_.validate();
}

net::Topology TopologyGenerator::generate(std::uint64_t seed) const {
  // Independent substreams so adding a knob to one wiring stage never
  // shifts the draws of another.
  stats::Rng root(seed);
  stats::Rng usb_rng = root.stream(1);
  stats::Rng wire_rng = root.stream(2);

  net::Topology t;
  t.reserve(spec_.node_count());

  // --- Corporate zone -----------------------------------------------------
  std::vector<NodeId> servers;
  servers.reserve(spec_.corporate_servers);
  for (std::size_t i = 0; i < spec_.corporate_servers; ++i)
    servers.push_back(
        t.add_node("corp.srv" + std::to_string(i), Zone::kCorporate, Role::kServer));
  for (std::size_t i = 1; i < servers.size(); ++i)  // backbone chain
    t.connect(servers[i - 1], servers[i]);

  std::vector<NodeId> workstations;
  workstations.reserve(spec_.corporate_workstations);
  for (std::size_t i = 0; i < spec_.corporate_workstations; ++i) {
    // At least one workstation always carries removable media so the
    // paper's delivery channel exists on every generated fleet.
    const bool usb = i == 0 || usb_rng.bernoulli(spec_.workstation_usb_fraction);
    const NodeId ws = t.add_node("corp.ws" + std::to_string(i), Zone::kCorporate,
                                 Role::kWorkstation, usb);
    workstations.push_back(ws);
    t.connect(ws, servers[wire_rng.below(servers.size())]);
    // Occasional peer-to-peer office link (file shares move laterally).
    if (i > 0 && wire_rng.bernoulli(0.25))
      t.connect(ws, workstations[wire_rng.below(i)]);
  }

  // --- DMZ ------------------------------------------------------------------
  std::vector<NodeId> dmz;
  dmz.reserve(spec_.dmz_historians);
  for (std::size_t i = 0; i < spec_.dmz_historians; ++i) {
    const NodeId h =
        t.add_node("dmz.hist" + std::to_string(i), Zone::kDmz, Role::kHistorian);
    dmz.push_back(h);
    t.connect(h, servers[wire_rng.below(servers.size())]);
  }

  // --- Control sites + field cells -------------------------------------------
  for (std::size_t s = 0; s < spec_.control_sites; ++s) {
    const std::string p = "site" + std::to_string(s) + ".";
    const NodeId scada = t.add_node(p + "scada", Zone::kControl, Role::kScadaServer);
    const NodeId eng =
        t.add_node(p + "eng", Zone::kControl, Role::kEngineering, /*usb=*/true);
    t.connect(scada, eng);

    for (std::size_t k = 0; k < spec_.hmis_per_site; ++k) {
      const NodeId hmi =
          t.add_node(p + "hmi" + std::to_string(k), Zone::kControl, Role::kHmi);
      t.connect(scada, hmi);
      if (k == 0) t.connect(eng, hmi);
    }
    for (std::size_t k = 0; k < spec_.historians_per_site; ++k) {
      const NodeId hist = t.add_node(p + "hist" + std::to_string(k), Zone::kControl,
                                     Role::kHistorian);
      t.connect(scada, hist);
      // Historian replication to a seeded DMZ mirror: the only
      // corporate-facing path out of the control zone.
      t.connect(hist, dmz[wire_rng.below(dmz.size())]);
    }
    for (std::size_t c = 0; c < spec_.plc_cells_per_site; ++c) {
      for (std::size_t k = 0; k < spec_.plcs_per_cell; ++k) {
        const NodeId plc = t.add_node(
            p + "cell" + std::to_string(c) + ".plc" + std::to_string(k),
            Zone::kField, Role::kPlc);
        t.connect(scada, plc);  // polling
        t.connect(eng, plc);    // engineering downloads
      }
    }
    for (std::size_t k = 0; k < spec_.sensor_gateways_per_site; ++k) {
      const NodeId gw = t.add_node(p + "gw" + std::to_string(k), Zone::kField,
                                   Role::kSensorGateway);
      t.connect(scada, gw);
    }
  }

  return t;
}

}  // namespace divsec::scenario
