#include "scenario/topology_generator.h"

#include <stdexcept>
#include <string>
#include <vector>

#include "stats/rng.h"

namespace divsec::scenario {

using net::NodeId;
using net::Role;
using net::Zone;

void FleetSpec::validate() const {
  if (corporate_workstations == 0)
    throw std::invalid_argument("FleetSpec: need >= 1 corporate workstation");
  if (corporate_servers == 0)
    throw std::invalid_argument("FleetSpec: need >= 1 corporate server");
  if (dmz_historians == 0)
    throw std::invalid_argument("FleetSpec: need >= 1 DMZ historian");
  if (control_sites == 0)
    throw std::invalid_argument("FleetSpec: need >= 1 control site");
  if (plc_cells_per_site == 0 || plcs_per_cell == 0)
    throw std::invalid_argument("FleetSpec: need >= 1 PLC per site");
  if (!(workstation_usb_fraction >= 0.0 && workstation_usb_fraction <= 1.0))
    throw std::invalid_argument("FleetSpec: usb fraction must be in [0,1]");
}

TopologyGenerator::TopologyGenerator(FleetSpec spec) : spec_(spec) {
  std::get<FleetSpec>(spec_).validate();
}

TopologyGenerator::TopologyGenerator(FamilySpec spec) : spec_(spec) {
  std::get<FamilySpec>(spec_).validate();
}

namespace {

// Every generator draws from the same two substreams in the same order
// discipline the FleetSpec path established: stream(1) feeds per-node
// USB-exposure flags, stream(2) feeds wiring choices. Draws happen in
// node-construction order and are consumed whether or not the outcome
// is used, so the expansion is a pure function of (spec, seed).

net::Topology generate_fleet(const FleetSpec& spec, std::uint64_t seed) {
  // Independent substreams so adding a knob to one wiring stage never
  // shifts the draws of another.
  stats::Rng root(seed);
  stats::Rng usb_rng = root.stream(1);
  stats::Rng wire_rng = root.stream(2);

  net::Topology t;
  t.reserve(spec.node_count());

  // --- Corporate zone -----------------------------------------------------
  std::vector<NodeId> servers;
  servers.reserve(spec.corporate_servers);
  for (std::size_t i = 0; i < spec.corporate_servers; ++i)
    servers.push_back(
        t.add_node("corp.srv" + std::to_string(i), Zone::kCorporate, Role::kServer));
  for (std::size_t i = 1; i < servers.size(); ++i)  // backbone chain
    t.connect(servers[i - 1], servers[i]);

  std::vector<NodeId> workstations;
  workstations.reserve(spec.corporate_workstations);
  for (std::size_t i = 0; i < spec.corporate_workstations; ++i) {
    // At least one workstation always carries removable media so the
    // paper's delivery channel exists on every generated fleet.
    const bool usb = i == 0 || usb_rng.bernoulli(spec.workstation_usb_fraction);
    const NodeId ws = t.add_node("corp.ws" + std::to_string(i), Zone::kCorporate,
                                 Role::kWorkstation, usb);
    workstations.push_back(ws);
    t.connect(ws, servers[wire_rng.below(servers.size())]);
    // Occasional peer-to-peer office link (file shares move laterally).
    if (i > 0 && wire_rng.bernoulli(0.25))
      t.connect(ws, workstations[wire_rng.below(i)]);
  }

  // --- DMZ ------------------------------------------------------------------
  std::vector<NodeId> dmz;
  dmz.reserve(spec.dmz_historians);
  for (std::size_t i = 0; i < spec.dmz_historians; ++i) {
    const NodeId h =
        t.add_node("dmz.hist" + std::to_string(i), Zone::kDmz, Role::kHistorian);
    dmz.push_back(h);
    t.connect(h, servers[wire_rng.below(servers.size())]);
  }

  // --- Control sites + field cells -------------------------------------------
  for (std::size_t s = 0; s < spec.control_sites; ++s) {
    const std::string p = "site" + std::to_string(s) + ".";
    const NodeId scada = t.add_node(p + "scada", Zone::kControl, Role::kScadaServer);
    const NodeId eng =
        t.add_node(p + "eng", Zone::kControl, Role::kEngineering, /*usb=*/true);
    t.connect(scada, eng);

    for (std::size_t k = 0; k < spec.hmis_per_site; ++k) {
      const NodeId hmi =
          t.add_node(p + "hmi" + std::to_string(k), Zone::kControl, Role::kHmi);
      t.connect(scada, hmi);
      if (k == 0) t.connect(eng, hmi);
    }
    for (std::size_t k = 0; k < spec.historians_per_site; ++k) {
      const NodeId hist = t.add_node(p + "hist" + std::to_string(k), Zone::kControl,
                                     Role::kHistorian);
      t.connect(scada, hist);
      // Historian replication to a seeded DMZ mirror: the only
      // corporate-facing path out of the control zone.
      t.connect(hist, dmz[wire_rng.below(dmz.size())]);
    }
    for (std::size_t c = 0; c < spec.plc_cells_per_site; ++c) {
      for (std::size_t k = 0; k < spec.plcs_per_cell; ++k) {
        const NodeId plc = t.add_node(
            p + "cell" + std::to_string(c) + ".plc" + std::to_string(k),
            Zone::kField, Role::kPlc);
        t.connect(scada, plc);  // polling
        t.connect(eng, plc);    // engineering downloads
      }
    }
    for (std::size_t k = 0; k < spec.sensor_gateways_per_site; ++k) {
      const NodeId gw = t.add_node(p + "gw" + std::to_string(k), Zone::kField,
                                   Role::kSensorGateway);
      t.connect(scada, gw);
    }
  }

  return t;
}

/// Shared corporate backbone: server chain, workstations hooked to
/// seeded servers (first one always USB-exposed), DMZ historians hooked
/// to seeded servers. Used by every family except mesh-flat.
struct Backbone {
  std::vector<NodeId> servers;
  std::vector<NodeId> workstations;
  std::vector<NodeId> dmz;
};

Backbone build_backbone(net::Topology& t, const FamilyBudget& b,
                        double usb_fraction, stats::Rng& usb_rng,
                        stats::Rng& wire_rng) {
  Backbone bb;
  bb.servers.reserve(b.servers);
  for (std::size_t i = 0; i < b.servers; ++i)
    bb.servers.push_back(
        t.add_node("corp.srv" + std::to_string(i), Zone::kCorporate, Role::kServer));
  for (std::size_t i = 1; i < bb.servers.size(); ++i)
    t.connect(bb.servers[i - 1], bb.servers[i]);

  bb.workstations.reserve(b.workstations);
  for (std::size_t i = 0; i < b.workstations; ++i) {
    const bool usb = i == 0 || usb_rng.bernoulli(usb_fraction);
    const NodeId ws = t.add_node("corp.ws" + std::to_string(i), Zone::kCorporate,
                                 Role::kWorkstation, usb);
    bb.workstations.push_back(ws);
    t.connect(ws, bb.servers[wire_rng.below(bb.servers.size())]);
    if (i > 0 && wire_rng.bernoulli(0.25))
      t.connect(ws, bb.workstations[wire_rng.below(i)]);
  }

  bb.dmz.reserve(b.dmz);
  for (std::size_t i = 0; i < b.dmz; ++i) {
    const NodeId h =
        t.add_node("dmz.hist" + std::to_string(i), Zone::kDmz, Role::kHistorian);
    bb.dmz.push_back(h);
    t.connect(h, bb.servers[wire_rng.below(bb.servers.size())]);
  }
  return bb;
}

/// purdue-deep: textbook zoned hierarchy with `depth` sensor-gateway
/// aggregation tiers between each site's SCADA server and its PLC
/// leaves. Every link is zone-adjacent (the property suite checks it).
net::Topology generate_purdue_deep(const FamilySpec& spec, std::uint64_t seed) {
  const FamilyBudget b = spec.budget();
  stats::Rng root(seed);
  stats::Rng usb_rng = root.stream(1);
  stats::Rng wire_rng = root.stream(2);

  net::Topology t;
  t.reserve(spec.nodes);
  const Backbone bb = build_backbone(t, b, spec.usb_fraction, usb_rng, wire_rng);

  for (std::size_t s = 0; s < b.sites; ++s) {
    const std::string p = "site" + std::to_string(s) + ".";
    const NodeId scada = t.add_node(p + "scada", Zone::kControl, Role::kScadaServer);
    const NodeId eng =
        t.add_node(p + "eng", Zone::kControl, Role::kEngineering, /*usb=*/true);
    t.connect(scada, eng);

    const NodeId hmi = t.add_node(p + "hmi", Zone::kControl, Role::kHmi);
    t.connect(scada, hmi);
    t.connect(eng, hmi);

    const NodeId hist = t.add_node(p + "hist", Zone::kControl, Role::kHistorian);
    t.connect(scada, hist);
    t.connect(hist, bb.dmz[wire_rng.below(bb.dmz.size())]);

    // Aggregation chain: gw0 hangs off the SCADA server, gwN off gwN-1;
    // PLCs hang off the deepest tier (or the SCADA server at depth 0).
    NodeId plc_parent = scada;
    for (std::size_t d = 0; d < spec.depth; ++d) {
      const NodeId gw = t.add_node(p + "gw" + std::to_string(d), Zone::kField,
                                   Role::kSensorGateway);
      t.connect(gw, plc_parent);
      plc_parent = gw;
    }
    for (std::size_t k = 0; k < b.plcs_for_site(s); ++k) {
      const NodeId plc =
          t.add_node(p + "plc" + std::to_string(k), Zone::kField, Role::kPlc);
      t.connect(plc, plc_parent);  // polling via the aggregation chain
      t.connect(plc, eng);         // engineering downloads
    }
  }
  return t;
}

/// mesh-flat: converged IT/OT. A five-node named skeleton, a role-cycled
/// fill, a ring over node ids for guaranteed connectivity, and
/// density-scaled random cross-links. Zones are labelled by role (the
/// firewall layer still cares) but the wiring ignores them — that
/// un-segmentation is the family's point, so the zone-monotonicity
/// property deliberately exempts it.
net::Topology generate_mesh_flat(const FamilySpec& spec, std::uint64_t seed) {
  spec.validate();
  stats::Rng root(seed);
  stats::Rng usb_rng = root.stream(1);
  stats::Rng wire_rng = root.stream(2);

  net::Topology t;
  t.reserve(spec.nodes);

  t.add_node("mesh.srv", Zone::kCorporate, Role::kServer);
  t.add_node("mesh.scada", Zone::kControl, Role::kScadaServer);
  t.add_node("mesh.eng", Zone::kControl, Role::kEngineering, /*usb=*/true);
  t.add_node("mesh.hist", Zone::kControl, Role::kHistorian);
  t.add_node("mesh.hmi", Zone::kControl, Role::kHmi);

  struct Fill {
    Role role;
    Zone zone;
    const char* stem;
  };
  static constexpr Fill kCycle[] = {
      {Role::kWorkstation, Zone::kCorporate, "ws"},
      {Role::kPlc, Zone::kField, "plc"},
      {Role::kWorkstation, Zone::kCorporate, "ws"},
      {Role::kHmi, Zone::kControl, "hmi"},
      {Role::kPlc, Zone::kField, "plc"},
      {Role::kServer, Zone::kCorporate, "srv"},
      {Role::kWorkstation, Zone::kCorporate, "ws"},
      {Role::kSensorGateway, Zone::kField, "gw"},
  };
  constexpr std::size_t kCycleLen = sizeof(kCycle) / sizeof(kCycle[0]);

  // Name counters are per role (several cycle slots share a role).
  std::size_t ws_n = 0, plc_n = 0, hmi_n = 0, srv_n = 0, gw_n = 0;
  for (std::size_t i = 5; i < spec.nodes; ++i) {
    const Fill& f = kCycle[(i - 5) % kCycleLen];
    bool usb = false;
    std::size_t* count = nullptr;
    switch (f.role) {
      case Role::kWorkstation:
        usb = ws_n == 0 || usb_rng.bernoulli(spec.usb_fraction);
        count = &ws_n;
        break;
      case Role::kPlc: count = &plc_n; break;
      case Role::kHmi: count = &hmi_n; break;
      case Role::kServer: count = &srv_n; break;
      default: count = &gw_n; break;
    }
    t.add_node("mesh." + std::string(f.stem) + std::to_string((*count)++), f.zone,
               f.role, usb);
  }

  // Ring over node ids: one flat broadcast domain, always connected.
  for (std::size_t i = 1; i < spec.nodes; ++i) t.connect(i - 1, i);
  t.connect(spec.nodes - 1, 0);

  // Density-scaled chords. Both endpoint draws are consumed even when
  // the pair is rejected, so the draw count is a function of the spec
  // alone and later stages never shift.
  const std::size_t extra =
      static_cast<std::size_t>(spec.density * static_cast<double>(spec.nodes) * 3.0);
  for (std::size_t i = 0; i < extra; ++i) {
    const NodeId a = wire_rng.below(spec.nodes);
    const NodeId b = wire_rng.below(spec.nodes);
    if (a != b && !t.linked(a, b)) t.connect(a, b);
  }
  return t;
}

/// hub-spoke: one corporate hub (servers, workstations, DMZ historians)
/// and `sites` remote spokes, each a minimal control room reaching the
/// hub through exactly one SCADA-to-DMZ uplink. Zone-adjacent by
/// construction.
net::Topology generate_hub_spoke(const FamilySpec& spec, std::uint64_t seed) {
  const FamilyBudget b = spec.budget();
  stats::Rng root(seed);
  stats::Rng usb_rng = root.stream(1);
  stats::Rng wire_rng = root.stream(2);

  net::Topology t;
  t.reserve(spec.nodes);
  const Backbone bb = build_backbone(t, b, spec.usb_fraction, usb_rng, wire_rng);

  for (std::size_t s = 0; s < b.sites; ++s) {
    const std::string p = "spoke" + std::to_string(s) + ".";
    const NodeId scada = t.add_node(p + "scada", Zone::kControl, Role::kScadaServer);
    const NodeId eng =
        t.add_node(p + "eng", Zone::kControl, Role::kEngineering, /*usb=*/true);
    t.connect(scada, eng);
    // The spoke's only path home: a WAN uplink into a seeded DMZ mirror.
    t.connect(scada, bb.dmz[wire_rng.below(bb.dmz.size())]);

    for (std::size_t k = 0; k < b.plcs_for_site(s); ++k) {
      const NodeId plc =
          t.add_node(p + "plc" + std::to_string(k), Zone::kField, Role::kPlc);
      t.connect(plc, scada);
      t.connect(plc, eng);
    }
  }
  return t;
}

/// brownfield: the first floor(segmentation * sites) sites are properly
/// zoned (historian-to-DMZ mirror only); the rest keep a legacy flat
/// uplink (SCADA wired straight into a corporate server) plus
/// density-scaled contractor shortcuts from field PLCs to office
/// workstations. Those legacy links are the zone violations the
/// property suite asserts exist exactly when segmentation < 1.
net::Topology generate_brownfield(const FamilySpec& spec, std::uint64_t seed) {
  const FamilyBudget b = spec.budget();
  stats::Rng root(seed);
  stats::Rng usb_rng = root.stream(1);
  stats::Rng wire_rng = root.stream(2);

  net::Topology t;
  t.reserve(spec.nodes);
  const Backbone bb = build_backbone(t, b, spec.usb_fraction, usb_rng, wire_rng);

  const std::size_t segmented_sites =
      static_cast<std::size_t>(spec.segmentation * static_cast<double>(b.sites));

  for (std::size_t s = 0; s < b.sites; ++s) {
    const bool segmented = s < segmented_sites;
    const std::string p = "site" + std::to_string(s) + ".";
    const NodeId scada = t.add_node(p + "scada", Zone::kControl, Role::kScadaServer);
    const NodeId eng =
        t.add_node(p + "eng", Zone::kControl, Role::kEngineering, /*usb=*/true);
    t.connect(scada, eng);

    const NodeId hmi = t.add_node(p + "hmi", Zone::kControl, Role::kHmi);
    t.connect(scada, hmi);

    const NodeId hist = t.add_node(p + "hist", Zone::kControl, Role::kHistorian);
    t.connect(scada, hist);

    if (segmented) {
      t.connect(hist, bb.dmz[wire_rng.below(bb.dmz.size())]);
    } else {
      // Legacy uplink: the control room predates the DMZ and was never
      // migrated off the corporate backbone.
      t.connect(scada, bb.servers[wire_rng.below(bb.servers.size())]);
    }

    for (std::size_t k = 0; k < b.plcs_for_site(s); ++k) {
      const NodeId plc =
          t.add_node(p + "plc" + std::to_string(k), Zone::kField, Role::kPlc);
      t.connect(plc, scada);
      t.connect(plc, eng);
      // Contractor shortcut: a maintenance laptop link left in place.
      // Draws are consumed on segmented sites too, so flipping one
      // site's segmentation never shifts another site's wiring.
      const bool shortcut = wire_rng.bernoulli(spec.density);
      const NodeId ws = bb.workstations[wire_rng.below(bb.workstations.size())];
      if (!segmented && shortcut && !t.linked(plc, ws)) t.connect(plc, ws);
    }
  }
  return t;
}

net::Topology generate_family(const FamilySpec& spec, std::uint64_t seed) {
  switch (spec.family) {
    case TopologyFamily::kPurdueDeep:
      return generate_purdue_deep(spec, seed);
    case TopologyFamily::kMeshFlat:
      return generate_mesh_flat(spec, seed);
    case TopologyFamily::kHubSpoke:
      return generate_hub_spoke(spec, seed);
    case TopologyFamily::kBrownfield:
      return generate_brownfield(spec, seed);
  }
  throw std::logic_error("TopologyGenerator: unhandled family");
}

}  // namespace

net::Topology TopologyGenerator::generate(std::uint64_t seed) const {
  if (const auto* fleet = std::get_if<FleetSpec>(&spec_))
    return generate_fleet(*fleet, seed);
  return generate_family(std::get<FamilySpec>(spec_), seed);
}

}  // namespace divsec::scenario
