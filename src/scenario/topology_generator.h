// topology_generator.h — parameterized enterprise-fleet topologies.
//
// The paper evaluates one hand-built 11-node cooling plant. Scaling the
// reproduction to "as many scenarios as you can imagine" means topologies
// must be generated, not hand-assembled. TopologyGenerator expands either
// a FleetSpec — zoned subnets in the classic Purdue shape (corporate IT,
// DMZ historians, per-site control rooms, field cells of PLCs) — or a
// FamilySpec (family_spec.h) selecting one of four procedural topology
// families, into a concrete net::Topology, deterministically in a seed.
// Same spec + same seed, same fleet, bit for bit; that determinism is
// what lets campaign sweeps over generated fleets honour the measurement
// engine's reproducibility contract and the distributed layer's
// named-spec re-expansion rule.
#pragma once

#include <cstdint>
#include <variant>

#include "net/topology.h"
#include "scenario/family_spec.h"

namespace divsec::scenario {

/// Sizing and shape of a generated fleet. One "site" is a control room
/// (SCADA server + engineering workstation + operator HMIs + historian)
/// plus its field cells; sites share the corporate/DMZ backbone.
struct FleetSpec {
  std::size_t corporate_workstations = 4;
  std::size_t corporate_servers = 1;
  std::size_t dmz_historians = 1;
  std::size_t control_sites = 1;
  std::size_t hmis_per_site = 1;
  std::size_t historians_per_site = 1;
  std::size_t plc_cells_per_site = 2;
  std::size_t plcs_per_cell = 2;
  std::size_t sensor_gateways_per_site = 1;
  /// Fraction of corporate workstations whose operators plug removable
  /// media in (seeded per-node draw). Engineering stations always do —
  /// that is the air-gap-crossing path Stuxnet used.
  double workstation_usb_fraction = 0.5;

  [[nodiscard]] std::size_t nodes_per_site() const noexcept {
    return 2 /* scada + engineering */ + hmis_per_site + historians_per_site +
           plc_cells_per_site * plcs_per_cell + sensor_gateways_per_site;
  }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return corporate_workstations + corporate_servers + dmz_historians +
           control_sites * nodes_per_site();
  }

  void validate() const;
};

class TopologyGenerator {
 public:
  explicit TopologyGenerator(FleetSpec spec);
  explicit TopologyGenerator(FamilySpec spec);

  /// Generate the fleet. Deterministic in `seed`: node order, names,
  /// zones, roles, USB flags and links are all reproducible. FleetSpec
  /// expansion is byte-for-byte what it was before families existed —
  /// the enterprise CSV baselines in CI pin that.
  [[nodiscard]] net::Topology generate(std::uint64_t seed) const;

 private:
  std::variant<FleetSpec, FamilySpec> spec_;
};

}  // namespace divsec::scenario
