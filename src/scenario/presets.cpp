#include "scenario/presets.h"

#include <charconv>
#include <stdexcept>

namespace divsec::scenario {

using net::Role;
using net::Zone;

namespace {

constexpr const char* kEnterprisePrefix = "enterprise";

/// Parse "enterprise{N}"; returns 0 when `name` is not of that form.
std::size_t parse_enterprise(const std::string& name) {
  const std::string_view prefix(kEnterprisePrefix);
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0)
    return 0;
  std::size_t n = 0;
  const char* first = name.data() + prefix.size();
  const char* last = name.data() + name.size();
  const auto [ptr, ec] = std::from_chars(first, last, n);
  if (ec != std::errc{} || ptr != last) return 0;
  return n;
}

net::Topology two_machine_topology() {
  // The paper's minimal rig: an engineering workstation (USB-exposed,
  // where the worm lands) programming one PLC.
  net::Topology t;
  const auto eng = t.add_node("rig.eng", Zone::kControl, Role::kEngineering, true);
  const auto plc = t.add_node("rig.plc", Zone::kField, Role::kPlc, false);
  t.connect(eng, plc);
  return t;
}

FleetSpec plant_small_spec() {
  FleetSpec spec;
  spec.corporate_workstations = 4;
  spec.corporate_servers = 1;
  spec.dmz_historians = 1;
  spec.control_sites = 1;
  spec.hmis_per_site = 1;
  spec.historians_per_site = 1;
  spec.plc_cells_per_site = 2;
  spec.plcs_per_cell = 2;
  spec.sensor_gateways_per_site = 1;
  return spec;  // 15 nodes
}

/// The unknown-preset message: every fixed preset, the enterprise
/// template and every family name, so a typo at the CLI reads as a menu
/// rather than a dead end.
std::string unknown_preset_message(const std::string& name) {
  std::string msg = "make_preset: unknown preset '" + name + "' (presets: ";
  const auto presets = preset_names();
  for (std::size_t i = 0; i < presets.size(); ++i) {
    if (i) msg += ", ";
    msg += presets[i];
  }
  msg += "; families: ";
  const auto families = family_names();
  for (std::size_t i = 0; i < families.size(); ++i) {
    if (i) msg += ", ";
    msg += families[i];
  }
  msg += ")";
  return msg;
}

FleetSpec plant_medium_spec() {
  FleetSpec spec;
  spec.corporate_workstations = 12;
  spec.corporate_servers = 2;
  spec.dmz_historians = 2;
  spec.control_sites = 2;
  spec.hmis_per_site = 2;
  spec.historians_per_site = 1;
  spec.plc_cells_per_site = 3;
  spec.plcs_per_cell = 4;
  spec.sensor_gateways_per_site = 2;
  return spec;  // 54 nodes
}

}  // namespace

FleetSpec enterprise_spec(std::size_t total_nodes) {
  if (total_nodes < kMinEnterpriseNodes)
    throw std::invalid_argument("enterprise preset needs >= " +
                                std::to_string(kMinEnterpriseNodes) + " nodes");
  FleetSpec spec;
  spec.control_sites = std::max<std::size_t>(1, total_nodes / 32);
  spec.hmis_per_site = 2;
  spec.historians_per_site = 1;
  spec.plc_cells_per_site = 2;
  spec.plcs_per_cell = 4;
  spec.sensor_gateways_per_site = 1;
  spec.corporate_servers = std::max<std::size_t>(1, total_nodes / 64);
  spec.dmz_historians = std::max<std::size_t>(1, spec.control_sites / 4);
  const std::size_t fixed = spec.control_sites * spec.nodes_per_site() +
                            spec.corporate_servers + spec.dmz_historians;
  if (fixed + 1 > total_nodes)
    throw std::invalid_argument("enterprise preset: node budget too small");
  spec.corporate_workstations = total_nodes - fixed;
  return spec;
}

std::vector<std::string> preset_names() {
  return {"paper_two_machines", "scope_cooling", "plant_small", "plant_medium",
          "enterprise{N}"};
}

bool has_preset(const std::string& name) {
  if (name == "paper_two_machines" || name == "scope_cooling" ||
      name == "plant_small" || name == "plant_medium")
    return true;
  if (parse_enterprise(name) >= kMinEnterpriseNodes) return true;
  if (FamilySpec::is_family_name(name)) {
    try {
      (void)FamilySpec::parse(name);
      return true;
    } catch (const std::invalid_argument&) {
      return false;
    }
  }
  return false;
}

std::string resolve_preset_name(const std::string& name) {
  if (FamilySpec::is_family_name(name)) return FamilySpec::parse(name).canonical();
  if (has_preset(name)) return name;
  throw std::out_of_range(unknown_preset_message(name));
}

GeneratedScenario make_preset(const std::string& name,
                              const divers::VariantCatalog& catalog,
                              std::uint64_t seed, VariantPolicy policy) {
  if (name == "paper_two_machines") {
    return ScenarioBuilder(two_machine_topology(), catalog)
        .variant_policy(policy)
        .build(name, seed);
  }
  if (name == "scope_cooling") {
    if (policy == VariantPolicy::kMonoculture) {
      // The curated case-study description: hand-picked component
      // grouping over the hand-built plant, all-baseline variants.
      const core::SystemDescription desc = core::make_scope_description(catalog);
      return GeneratedScenario{name, desc.baseline(), desc.components()};
    }
    return ScenarioBuilder(attack::make_scope_cooling_scenario().topology, catalog)
        .variant_policy(policy)
        .build(name, seed);
  }
  if (FamilySpec::is_family_name(name)) {
    // Build under the canonical spelling so re-expansion from a shard's
    // recorded name reproduces the same scenario label bit-for-bit.
    const FamilySpec fspec = FamilySpec::parse(name);
    return ScenarioBuilder(TopologyGenerator(fspec).generate(seed), catalog)
        .variant_policy(policy)
        .build(fspec.canonical(), seed);
  }
  FleetSpec spec;
  if (name == "plant_small") {
    spec = plant_small_spec();
  } else if (name == "plant_medium") {
    spec = plant_medium_spec();
  } else if (const std::size_t n = parse_enterprise(name); n > 0) {
    spec = enterprise_spec(n);
  } else {
    throw std::out_of_range(unknown_preset_message(name));
  }
  return ScenarioBuilder(TopologyGenerator(spec).generate(seed), catalog)
      .variant_policy(policy)
      .build(name, seed);
}

}  // namespace divsec::scenario
