// presets.h — the named scenario registry.
//
// One call turns a preset name into a runnable GeneratedScenario:
//
//   auto fleet = scenario::make_preset("enterprise1024", catalog, seed);
//
// Fixed presets:
//   * paper_two_machines — the paper's minimal case study: one
//     engineering workstation driving one PLC;
//   * scope_cooling      — the 11-node SCoPE data-center cooling plant
//     used throughout the reproduction (topology + the curated
//     seven-component DoE grouping of make_scope_description);
//   * plant_small        — a 15-node single-site plant;
//   * plant_medium       — a 54-node two-site plant.
//
// Parameterized family:
//   * enterprise{N}      — an N-node fleet (N >= 24), e.g. enterprise64,
//     enterprise256, enterprise1024: multi-site control zones with field
//     cells, a DMZ historian tier and a corporate zone that absorbs the
//     remaining headcount. node_count() == N exactly.
//
// Procedural families (family_spec.h) are also preset names: any string
// FamilySpec::parse accepts — "brownfield", "hub-spoke:nodes=512", a
// full "familyv1:..." canonical form — expands here, and
// resolve_preset_name canonicalizes it so the sweep layer fingerprints
// one spelling per spec.
//
// Every preset is deterministic in (name, catalog, seed, policy).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario_builder.h"
#include "scenario/topology_generator.h"

namespace divsec::scenario {

/// Fixed preset names plus the "enterprise{N}" template (listed
/// literally; any N >= kMinEnterpriseNodes substitutes).
[[nodiscard]] std::vector<std::string> preset_names();

inline constexpr std::size_t kMinEnterpriseNodes = 24;

/// True for fixed preset names, well-formed enterprise{N} instances and
/// valid family specs.
[[nodiscard]] bool has_preset(const std::string& name);

/// Canonicalize a preset name: fixed presets and enterprise{N} pass
/// through unchanged; family specs come back in FamilySpec::canonical()
/// form (so two spellings of the same spec fingerprint identically).
/// Throws std::out_of_range listing presets and families for unknown
/// names, std::invalid_argument for malformed family parameters.
[[nodiscard]] std::string resolve_preset_name(const std::string& name);

/// The FleetSpec behind enterprise{N}: sites scale as N/32, servers as
/// N/64, DMZ historians as sites/4; corporate workstations absorb the
/// remainder so the total is exactly N.
[[nodiscard]] FleetSpec enterprise_spec(std::size_t total_nodes);

/// Build a preset. Throws std::out_of_range for unknown names (the
/// message lists every preset and family), and std::invalid_argument
/// for a recognizable-but-unsatisfiable request (enterprise{N} with N
/// below kMinEnterpriseNodes, a family spec with bad parameters) — the
/// more informative error wins.
[[nodiscard]] GeneratedScenario make_preset(
    const std::string& name, const divers::VariantCatalog& catalog,
    std::uint64_t seed, VariantPolicy policy = VariantPolicy::kMonoculture);

}  // namespace divsec::scenario
