#include "scenario/family_spec.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace divsec::scenario {
namespace {

constexpr const char* kFamilyNames[kTopologyFamilyCount] = {
    "purdue-deep",
    "mesh-flat",
    "hub-spoke",
    "brownfield",
};

constexpr char kVersionPrefix[] = "familyv";

std::string joined_family_names() {
  std::string out;
  for (std::size_t i = 0; i < kTopologyFamilyCount; ++i) {
    if (i) out += ", ";
    out += kFamilyNames[i];
  }
  return out;
}

bool lookup_family(const std::string& name, TopologyFamily& out) {
  for (std::size_t i = 0; i < kTopologyFamilyCount; ++i) {
    if (name == kFamilyNames[i]) {
      out = static_cast<TopologyFamily>(i);
      return true;
    }
  }
  return false;
}

/// Shortest decimal string that round-trips to exactly `v` through
/// strtod. Canonical strings are fingerprint material: the rendering
/// must be a pure function of the value, with no trailing-digit noise.
std::string format_double(double v) {
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::size_t parse_size_value(const std::string& key, const std::string& text) {
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])))
    throw std::invalid_argument("FamilySpec: parameter '" + key +
                                "' needs a non-negative integer, got '" + text + "'");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0')
    throw std::invalid_argument("FamilySpec: parameter '" + key +
                                "' needs a non-negative integer, got '" + text + "'");
  return static_cast<std::size_t>(v);
}

double parse_double_value(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const double v = text.empty() ? 0.0 : std::strtod(text.c_str(), &end);
  if (text.empty() || end == nullptr || *end != '\0')
    throw std::invalid_argument("FamilySpec: parameter '" + key +
                                "' needs a number, got '" + text + "'");
  return v;
}

void apply_param(FamilySpec& spec, const std::string& key, const std::string& value) {
  if (key == "nodes") {
    spec.nodes = parse_size_value(key, value);
  } else if (key == "sites") {
    spec.sites = parse_size_value(key, value);
  } else if (key == "depth") {
    spec.depth = parse_size_value(key, value);
  } else if (key == "density") {
    spec.density = parse_double_value(key, value);
  } else if (key == "segmentation") {
    spec.segmentation = parse_double_value(key, value);
  } else if (key == "usb") {
    spec.usb_fraction = parse_double_value(key, value);
  } else {
    throw std::invalid_argument(
        "FamilySpec: unknown parameter '" + key +
        "' (known: nodes, sites, depth, density, segmentation, usb)");
  }
}

void check_fraction(const char* field, double v) {
  if (!(v >= 0.0 && v <= 1.0))
    throw std::invalid_argument(std::string("FamilySpec: ") + field +
                                " must be in [0,1], got " + format_double(v));
}

}  // namespace

const char* to_string(TopologyFamily f) noexcept {
  return kFamilyNames[static_cast<std::size_t>(f)];
}

std::vector<std::string> family_names() {
  return {kFamilyNames, kFamilyNames + kTopologyFamilyCount};
}

void FamilySpec::validate() const { (void)budget(); }

FamilyBudget FamilySpec::budget() const {
  if (nodes < kMinFamilyNodes || nodes > kMaxFamilyNodes)
    throw std::invalid_argument(
        "FamilySpec: nodes must be in [" + std::to_string(kMinFamilyNodes) + ", " +
        std::to_string(kMaxFamilyNodes) + "], got " + std::to_string(nodes));
  if (sites > kMaxFamilySites)
    throw std::invalid_argument("FamilySpec: sites must be <= " +
                                std::to_string(kMaxFamilySites) + ", got " +
                                std::to_string(sites));
  if (depth > kMaxFamilyDepth)
    throw std::invalid_argument("FamilySpec: depth must be <= " +
                                std::to_string(kMaxFamilyDepth) + ", got " +
                                std::to_string(depth));
  check_fraction("density", density);
  check_fraction("segmentation", segmentation);
  check_fraction("usb", usb_fraction);

  FamilyBudget b;
  b.sites = resolved_sites();

  if (family == TopologyFamily::kMeshFlat) {
    // The mesh has no backbone/site split: a 5-node named skeleton and a
    // role-cycled fill, all wired flat. kMinFamilyNodes covers it.
    return b;
  }

  switch (family) {
    case TopologyFamily::kPurdueDeep:
      // scada + eng + hmi + hist + one gateway per aggregation tier.
      b.site_skeleton = 4 + depth;
      break;
    case TopologyFamily::kHubSpoke:
      b.site_skeleton = 2;  // scada + eng; everything else lives at the hub
      break;
    case TopologyFamily::kBrownfield:
      b.site_skeleton = 4;  // scada + eng + hmi + hist
      break;
    case TopologyFamily::kMeshFlat:
      break;  // handled above
  }

  b.servers = nodes / 64 > 1 ? nodes / 64 : 1;
  if (family == TopologyFamily::kHubSpoke && b.servers < 2) b.servers = 2;
  b.dmz = (b.sites + 3) / 4;

  const std::size_t fixed = b.servers + b.dmz + b.sites * b.site_skeleton;
  // Feasibility: after the fixed skeleton there must be room for at
  // least one workstation and one PLC per site.
  if (nodes < fixed + b.sites + 1)
    throw std::invalid_argument(
        "FamilySpec: nodes=" + std::to_string(nodes) + " too small for " +
        std::to_string(b.sites) + " " + to_string(family) + " sites (needs >= " +
        std::to_string(fixed + b.sites + 1) + ")");

  const std::size_t remaining = nodes - fixed;
  std::size_t ws = remaining / (family == TopologyFamily::kHubSpoke ? 4 : 5);
  if (ws == 0) ws = 1;
  std::size_t plcs = remaining - ws;
  if (plcs < b.sites) {  // never leave a site without a PLC target
    ws = remaining - b.sites;
    plcs = b.sites;
  }
  b.workstations = ws;
  b.plcs = plcs;
  return b;
}

std::string FamilySpec::canonical() const {
  validate();
  std::string out = kVersionPrefix + std::to_string(kFamilySpecVersion) + ":";
  out += to_string(family);
  out += ":nodes=" + std::to_string(nodes);
  out += ",sites=" + std::to_string(resolved_sites());
  out += ",depth=" + std::to_string(depth);
  out += ",density=" + format_double(density);
  out += ",segmentation=" + format_double(segmentation);
  out += ",usb=" + format_double(usb_fraction);
  return out;
}

bool FamilySpec::is_family_name(const std::string& name) {
  const std::size_t colon = name.find(':');
  const std::string head = colon == std::string::npos ? name : name.substr(0, colon);
  if (head.rfind(kVersionPrefix, 0) == 0) return true;
  TopologyFamily f;
  return lookup_family(head, f);
}

FamilySpec FamilySpec::parse(const std::string& name) {
  std::string rest = name;

  // Optional version prefix. Unknown versions are a hard error: a newer
  // canonical string must not be silently reinterpreted under old field
  // semantics (it would change what the fingerprint means).
  if (rest.rfind(kVersionPrefix, 0) == 0) {
    const std::size_t colon = rest.find(':');
    const std::string ver = colon == std::string::npos ? rest : rest.substr(0, colon);
    const std::string want = kVersionPrefix + std::to_string(kFamilySpecVersion);
    if (ver != want)
      throw std::invalid_argument("FamilySpec: unsupported spec version '" + ver +
                                  "' (this build speaks " + want + ")");
    rest = colon == std::string::npos ? std::string() : rest.substr(colon + 1);
  }

  const std::size_t colon = rest.find(':');
  const std::string fam_name =
      colon == std::string::npos ? rest : rest.substr(0, colon);
  FamilySpec spec;
  if (!lookup_family(fam_name, spec.family))
    throw std::invalid_argument("FamilySpec: unknown family '" + fam_name +
                                "' (families: " + joined_family_names() + ")");

  if (colon != std::string::npos) {
    std::string params = rest.substr(colon + 1);
    std::size_t pos = 0;
    while (pos <= params.size()) {
      const std::size_t comma = params.find(',', pos);
      const std::string item = params.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      if (!item.empty()) {
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
          throw std::invalid_argument(
              "FamilySpec: expected key=value, got '" + item + "'");
        apply_param(spec, item.substr(0, eq), item.substr(eq + 1));
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  spec.validate();
  return spec;
}

// ---------------------------------------------------------------------------
// from_json — a deliberately minimal reader for one flat object of string
// and number values. The repo's util/json.h is writer-only by design;
// this is the narrow inverse the --family-json flag needs, not a general
// JSON library.

namespace {

struct JsonCursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("FamilySpec: bad JSON at offset " +
                                std::to_string(pos) + ": " + what);
  }
  char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  std::string string_value() {
    expect('"');
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') fail("escapes are not supported in family specs");
      out += text[pos++];
    }
    if (pos >= text.size()) fail("unterminated string");
    ++pos;  // closing quote
    return out;
  }
  std::string number_token() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E'))
      ++pos;
    if (pos == start) fail("expected a number");
    return text.substr(start, pos - start);
  }
};

}  // namespace

FamilySpec FamilySpec::from_json(const std::string& text) {
  JsonCursor c{text};
  FamilySpec spec;
  bool have_family = false;

  c.expect('{');
  if (c.peek() != '}') {
    for (;;) {
      const std::string key = c.string_value();
      c.expect(':');
      if (key == "family") {
        const std::string fam = c.string_value();
        if (!lookup_family(fam, spec.family))
          throw std::invalid_argument("FamilySpec: unknown family '" + fam +
                                      "' (families: " + joined_family_names() +
                                      ")");
        have_family = true;
      } else {
        apply_param(spec, key, c.number_token());
      }
      if (c.peek() != ',') break;
      ++c.pos;
    }
  }
  c.expect('}');
  c.skip_ws();
  if (c.pos != text.size()) c.fail("trailing content after object");
  if (!have_family)
    throw std::invalid_argument(
        "FamilySpec: JSON spec needs a \"family\" key (families: " +
        joined_family_names() + ")");

  spec.validate();
  return spec;
}

bool operator==(const FamilySpec& a, const FamilySpec& b) noexcept {
  return a.family == b.family && a.nodes == b.nodes && a.sites == b.sites &&
         a.depth == b.depth && a.density == b.density &&
         a.segmentation == b.segmentation && a.usb_fraction == b.usb_fraction;
}

}  // namespace divsec::scenario
