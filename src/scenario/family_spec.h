// family_spec.h — procedural scenario families: a versioned, canonically
// serializable parameter block that expands into a topology.
//
// The preset registry's five shapes cover the paper's case studies; sweep
// campaigns over thousands of distinct deployments need topologies drawn
// from *families*. A FamilySpec selects one of four generation algorithms
// and its parameters:
//
//   * purdue-deep — classic Purdue hierarchy with a configurable number
//     of field aggregation tiers (`depth` sensor-gateway hops between the
//     SCADA server and the PLC leaves): the deeply segmented greenfield.
//   * mesh-flat   — converged IT/OT: every node on one flat, ring-backed
//     mesh with `density`-scaled random cross-links and no DMZ. What the
//     Purdue model exists to prevent.
//   * hub-spoke   — multi-site: a corporate hub (servers, workstations,
//     DMZ historians) and `sites` small spokes, each reaching the hub
//     through exactly one SCADA-to-DMZ uplink.
//   * brownfield  — partially segmented reality: `segmentation` of the
//     sites are properly zoned (historian-to-DMZ mirror only), the rest
//     keep legacy flat uplinks (SCADA straight into the corporate
//     backbone) and `density`-scaled contractor shortcuts from field
//     PLCs to office workstations.
//
// The determinism contract mirrors the preset registry's: expansion is a
// pure function of (spec, seed), so the named-spec re-expansion rule of
// the distributed sweep layer keeps holding — a canonical spec string is
// a preset name, shards ship zero topology bytes, and the canonical form
// feeds the sweep fingerprint. canonical() serializes every field in a
// fixed order behind a format-version prefix ("familyv1:"), parse() is
// lenient about spelling but canonical(parse(s)) is idempotent, and two
// specs differing in any field canonicalize differently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace divsec::scenario {

/// The four generation algorithms. Each is a distinct wiring discipline,
/// not a parameter setting of one master shape.
enum class TopologyFamily : std::uint8_t {
  kPurdueDeep,
  kMeshFlat,
  kHubSpoke,
  kBrownfield,
};

inline constexpr std::size_t kTopologyFamilyCount = 4;

[[nodiscard]] const char* to_string(TopologyFamily f) noexcept;

/// The family names in enum order ("purdue-deep", "mesh-flat",
/// "hub-spoke", "brownfield") — what error listings and --help print.
[[nodiscard]] std::vector<std::string> family_names();

/// Format version of the canonical spec string. Bump when a field is
/// added or its meaning changes; parse() rejects versions it does not
/// speak (the canonical string is fingerprint material, so a silent
/// reinterpretation would corrupt the re-expansion contract).
inline constexpr std::uint32_t kFamilySpecVersion = 1;

inline constexpr std::size_t kMinFamilyNodes = 16;
inline constexpr std::size_t kMaxFamilyNodes = std::size_t{1} << 20;
inline constexpr std::size_t kMaxFamilySites = 4096;
inline constexpr std::size_t kMaxFamilyDepth = 6;

/// Derived integer layout of a family expansion: how the node budget is
/// dealt across the backbone and the sites. Computed in one place
/// (FamilySpec::budget()) and shared by validate() and the generator, so
/// feasibility checking and generation can never disagree. All of it is
/// plain integer arithmetic on the spec — no randomness.
struct FamilyBudget {
  std::size_t sites = 1;
  std::size_t servers = 0;        // corporate backbone servers
  std::size_t dmz = 0;            // DMZ historians (0 for mesh-flat)
  std::size_t workstations = 0;   // corporate workstations
  std::size_t plcs = 0;           // PLC total, dealt round-robin to sites
  std::size_t site_skeleton = 0;  // fixed per-site nodes (family-specific)

  /// PLCs of site s under the round-robin deal (earlier sites absorb the
  /// remainder): plcs/sites + (s < plcs % sites).
  [[nodiscard]] std::size_t plcs_for_site(std::size_t s) const noexcept {
    return plcs / sites + (s < plcs % sites ? 1 : 0);
  }
};

/// One procedurally generated deployment family instance. Every field is
/// part of the canonical form — and therefore of the sweep fingerprint —
/// whether or not the selected family reads it.
struct FamilySpec {
  TopologyFamily family = TopologyFamily::kPurdueDeep;
  /// Total node count; generation hits it exactly.
  std::size_t nodes = 256;
  /// Site (purdue/brownfield) or spoke (hub-spoke) count; 0 = auto
  /// (max(1, nodes / 48)). canonical() always prints the resolved value.
  std::size_t sites = 0;
  /// purdue-deep: field aggregation tiers between SCADA and the PLCs.
  std::size_t depth = 2;
  /// mesh-flat: extra cross-link intensity; brownfield: contractor-
  /// shortcut probability per legacy PLC. In [0, 1].
  double density = 0.15;
  /// brownfield: fraction of sites that are properly segmented. In [0,1].
  double segmentation = 0.5;
  /// Fraction of workstations whose operators plug removable media in
  /// (the first workstation and every engineering station always do).
  double usb_fraction = 0.35;

  [[nodiscard]] std::size_t resolved_sites() const noexcept {
    if (sites > 0) return sites;
    return nodes / 48 > 0 ? nodes / 48 : 1;
  }

  /// Range-check every field and prove the node budget feasible.
  /// Throws std::invalid_argument naming the offending field.
  void validate() const;

  /// The budget layout this spec expands to (validates on the way).
  [[nodiscard]] FamilyBudget budget() const;

  /// The canonical spec string, e.g.
  ///   familyv1:hub-spoke:nodes=256,sites=5,depth=2,density=0.15,
  ///   segmentation=0.5,usb=0.35
  /// Fixed field order, resolved sites, shortest-round-trip doubles:
  /// equal specs render equally, different specs render differently.
  [[nodiscard]] std::string canonical() const;

  /// Whether `name` claims to be a family spec (its first ':'-segment is
  /// the version prefix or a family name). A true return means parse()
  /// owns the name — it may still throw on malformed parameters.
  [[nodiscard]] static bool is_family_name(const std::string& name);

  /// Parse "familyv1:FAMILY[:k=v,...]", "FAMILY[:k=v,...]" or a bare
  /// family name. Unlisted parameters keep their defaults. Throws
  /// std::invalid_argument (listing families / parameter names) on
  /// unknown families, unknown keys, malformed or out-of-range values.
  [[nodiscard]] static FamilySpec parse(const std::string& name);

  /// Parse a flat JSON object, e.g.
  ///   {"family": "brownfield", "nodes": 512, "segmentation": 0.75}
  /// Same keys as the canonical form plus "family"; same defaulting and
  /// validation as parse().
  [[nodiscard]] static FamilySpec from_json(const std::string& text);
};

/// Exact field equality (what canonical() equality means, minus the
/// sites auto-resolution).
[[nodiscard]] bool operator==(const FamilySpec& a, const FamilySpec& b) noexcept;

}  // namespace divsec::scenario
