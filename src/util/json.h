// json.h — the one place JSON text is produced.
//
// Every JSON artifact the project writes — the BENCH_*.json perf
// trajectory records, the distributed-sweep state-file headers, and the
// merged-summary exports — goes through these helpers, so string
// escaping and non-finite-number handling exist exactly once. Emission
// only: the binary state codec (dist/state_codec.h) owns parsing of its
// own format, and nothing in the project consumes free-form JSON.
#pragma once

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

namespace divsec::util {

/// JSON string escaping: quotes, backslashes, and control characters.
/// Names come from free-form code (bench labels, preset names) — an
/// unescaped quote or newline would silently corrupt a whole artifact.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

/// Quoted, escaped JSON string literal.
inline std::string json_string(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

/// JSON number or null: printf's "%f" renders non-finite doubles as
/// nan/inf, which no JSON parser accepts — a single timer glitch or 0/0
/// speedup used to invalidate a whole artifact.
inline std::string json_number(double v, int precision = 3) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// JSON number with full round-trip precision (%.17g reproduces the
/// exact IEEE-754 double), or null for non-finite values. Used by the
/// sweep summary/state writers, where values are measurements rather
/// than timings and must not lose bits in transit.
inline std::string json_number_exact(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// One machine-readable timing record for the perf trajectory. `speedup`
/// is relative to whatever the writer defines as its serial baseline
/// (1.0 for standalone timings). `peak_mb` is an optional memory datum
/// (peak RSS or aggregation footprint, in MiB); NaN serializes as null.
/// `wall_floor_ms` is an optional per-metric noise floor: the gate skips
/// the wall comparison while the baseline wall sits below it — set it on
/// sub-millisecond metrics (per-round merge times) where the global 5 ms
/// CLI floor would be wrong in the other direction. NaN = omitted.
/// `state_bytes` is an optional size datum (encoded shard-state bytes) —
/// lower is better, gated like a ceiling so codec regressions fail CI.
struct BenchRecord {
  std::string name;
  double wall_ms = 0.0;
  int threads = 1;
  double speedup = 1.0;
  double peak_mb = std::numeric_limits<double>::quiet_NaN();
  double wall_floor_ms = std::numeric_limits<double>::quiet_NaN();
  double state_bytes = std::numeric_limits<double>::quiet_NaN();
};

/// Write records as a JSON array to `path` (BENCH_*.json convention), so
/// CI can track wall time and parallel speedup across commits. Emits
/// nothing on I/O failure: writers must not fail on read-only filesystems.
inline void write_bench_json(const std::string& path,
                             const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return;
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::string extra;
    if (std::isfinite(r.wall_floor_ms))
      extra += ", \"wall_floor_ms\": " + json_number(r.wall_floor_ms);
    if (std::isfinite(r.state_bytes))
      extra += ", \"state_bytes\": " + json_number(r.state_bytes, 0);
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"wall_ms\": %s, \"threads\": %d, "
                 "\"speedup\": %s, \"peak_mb\": %s%s}%s\n",
                 json_escape(r.name).c_str(), json_number(r.wall_ms).c_str(),
                 r.threads, json_number(r.speedup).c_str(),
                 json_number(r.peak_mb).c_str(), extra.c_str(),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace divsec::util
