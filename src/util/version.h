// version.h — the one project version string, reported by every CLI's
// --version flag and bumped when a release-visible artifact (state-file
// format, CSV schema, CLI surface) changes.
#pragma once

namespace divsec::util {

inline constexpr const char kVersion[] = "0.4.0";

}  // namespace divsec::util
