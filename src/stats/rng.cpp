#include "stats/rng.h"

// Header-only implementation; this TU exists so the library target always
// has at least one object file and to anchor potential future non-inline
// helpers.
namespace divsec::stats {}
