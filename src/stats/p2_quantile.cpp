#include "stats/p2_quantile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace divsec::stats {

namespace {

/// Linear interpolation of F(x) over a sketch's (height, fraction) knots;
/// 0 below the first knot, 1 above the last.
double cdf_at(const std::array<double, 5>& x, const std::array<double, 5>& f,
              double at) {
  if (at < x.front()) return 0.0;
  if (at >= x.back()) return 1.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    if (at < x[i + 1]) {
      const double dx = x[i + 1] - x[i];
      if (dx <= 0.0) return f[i + 1];
      return f[i] + (f[i + 1] - f[i]) * (at - x[i]) / dx;
    }
  }
  return 1.0;
}

}  // namespace

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0 && q < 1.0))
    throw std::invalid_argument("P2Quantile: q must be in (0,1)");
}

P2Quantile::State P2Quantile::state() const noexcept {
  return {q_, count_, heights_, pos_};
}

P2Quantile P2Quantile::from_state(const State& s) {
  P2Quantile p(s.q);  // validates q
  if (s.count >= kMarkers) {
    for (std::size_t i = 0; i + 1 < kMarkers; ++i) {
      if (!(s.heights[i] <= s.heights[i + 1]))
        throw std::invalid_argument(
            "P2Quantile::from_state: marker heights not ascending");
      if (!(s.pos[i] < s.pos[i + 1]))
        throw std::invalid_argument(
            "P2Quantile::from_state: marker positions not increasing");
    }
    if (s.pos.front() != 1.0 ||
        s.pos.back() != static_cast<double>(s.count))
      throw std::invalid_argument(
          "P2Quantile::from_state: end markers not pinned at 1/count");
  }
  p.count_ = s.count;
  p.heights_ = s.heights;
  p.pos_ = s.pos;
  return p;
}

double P2Quantile::desired_fraction(std::size_t i) const noexcept {
  switch (i) {
    case 0: return 0.0;
    case 1: return q_ / 2.0;
    case 2: return q_;
    case 3: return (1.0 + q_) / 2.0;
    default: return 1.0;
  }
}

void P2Quantile::init_markers() {
  std::sort(heights_.begin(), heights_.end());
  for (std::size_t i = 0; i < kMarkers; ++i)
    pos_[i] = static_cast<double>(i + 1);
}

void P2Quantile::add(double x) {
  if (count_ < kMarkers) {
    heights_[count_++] = x;
    if (count_ == kMarkers) init_markers();
    return;
  }

  // Locate the cell and update the extremes.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  ++count_;
  for (std::size_t i = k + 1; i < kMarkers; ++i) pos_[i] += 1.0;

  // Nudge the interior markers toward their desired positions with the
  // piecewise-parabolic (P²) update, falling back to linear when the
  // parabola would leave the bracketing heights.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double desired =
        1.0 + (static_cast<double>(count_) - 1.0) * desired_fraction(i);
    const double d = desired - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double s = d >= 0.0 ? 1.0 : -1.0;
      const double np = pos_[i + 1], pp = pos_[i - 1], p = pos_[i];
      const double parabolic =
          heights_[i] +
          s / (np - pp) *
              ((p - pp + s) * (heights_[i + 1] - heights_[i]) / (np - p) +
               (np - p - s) * (heights_[i] - heights_[i - 1]) / (p - pp));
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const std::size_t j = s > 0.0 ? i + 1 : i - 1;
        heights_[i] += s * (heights_[j] - heights_[i]) / (pos_[j] - p);
      }
      pos_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < kMarkers) {
    // Exact type-7 quantile of the few stored observations.
    std::vector<double> v(heights_.begin(),
                          heights_.begin() + static_cast<std::ptrdiff_t>(count_));
    std::sort(v.begin(), v.end());
    if (count_ == 1) return v[0];
    const double rank = q_ * (static_cast<double>(count_) - 1.0);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, count_ - 1);
    const double w = rank - static_cast<double>(lo);
    return v[lo] + w * (v[hi] - v[lo]);
  }
  return heights_[2];
}

void P2Quantile::rebuild(std::size_t count,
                         const std::array<double, kMarkers>& heights) {
  count_ = count;
  heights_ = heights;
  std::sort(heights_.begin(), heights_.end());
  const auto n = static_cast<double>(count);
  for (std::size_t i = 1; i + 1 < kMarkers; ++i)
    pos_[i] = std::round(1.0 + (n - 1.0) * desired_fraction(i));
  // The end markers are pinned (pos_[0] == 1, pos_[4] == count) and the
  // interior must stay strictly increasing between them; only the
  // interior participates in the clamps, so the pins survive.
  pos_[0] = 1.0;
  pos_[kMarkers - 1] = n;
  for (std::size_t i = 1; i + 1 < kMarkers; ++i)
    pos_[i] = std::max(pos_[i], pos_[i - 1] + 1.0);
  for (std::size_t i = kMarkers - 1; i-- > 1;)
    pos_[i] = std::min(pos_[i], pos_[i + 1] - 1.0);
}

void P2Quantile::merge(const P2Quantile& other) {
  if (other.q_ != q_)
    throw std::invalid_argument("P2Quantile::merge: quantile mismatch");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  if (other.count_ < kMarkers) {
    // The other side still holds raw observations: replay them.
    for (std::size_t i = 0; i < other.count_; ++i) add(other.heights_[i]);
    return;
  }
  if (count_ < kMarkers) {
    const auto raw = heights_;
    const std::size_t n = count_;
    *this = other;
    for (std::size_t i = 0; i < n; ++i) add(raw[i]);
    return;
  }

  // Both sides are sketches: resample the pooled piecewise-linear CDF at
  // this sketch's desired marker fractions.
  std::array<double, kMarkers> fa{}, fb{};
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  for (std::size_t i = 0; i < kMarkers; ++i) {
    fa[i] = (pos_[i] - 1.0) / (na - 1.0);
    fb[i] = (other.pos_[i] - 1.0) / (nb - 1.0);
  }
  const double wa = na / (na + nb);

  std::vector<double> breaks(heights_.begin(), heights_.end());
  breaks.insert(breaks.end(), other.heights_.begin(), other.heights_.end());
  std::sort(breaks.begin(), breaks.end());

  const auto pooled_cdf = [&](double x) {
    return wa * cdf_at(heights_, fa, x) +
           (1.0 - wa) * cdf_at(other.heights_, fb, x);
  };
  const auto invert = [&](double target) {
    if (target <= 0.0) return breaks.front();
    if (target >= 1.0) return breaks.back();
    double prev_x = breaks.front();
    double prev_f = 0.0;
    for (double x : breaks) {
      const double f = pooled_cdf(x);
      if (f >= target) {
        const double df = f - prev_f;
        if (df <= 0.0) return x;
        return prev_x + (x - prev_x) * (target - prev_f) / df;
      }
      prev_x = x;
      prev_f = f;
    }
    return breaks.back();
  };

  std::array<double, kMarkers> merged{};
  for (std::size_t i = 0; i < kMarkers; ++i)
    merged[i] = invert(desired_fraction(i));
  merged[0] = std::min(heights_[0], other.heights_[0]);
  merged[kMarkers - 1] = std::max(heights_[4], other.heights_[4]);
  rebuild(count_ + other.count_, merged);
}

}  // namespace divsec::stats
