#include "stats/anova.h"

#include <bit>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "stats/special.h"

namespace divsec::stats {

namespace {

/// Decode flat cell index into per-factor level indices (factor 0 fastest).
void decode_cell(std::size_t flat, std::span<const std::size_t> levels,
                 std::span<std::size_t> out) {
  for (std::size_t i = 0; i < levels.size(); ++i) {
    out[i] = flat % levels[i];
    flat /= levels[i];
  }
}

/// Project full level coordinates onto the factors in `mask`, producing a
/// mixed-radix index over just those factors (ascending factor order).
std::size_t project(std::span<const std::size_t> coords,
                    std::span<const std::size_t> levels, std::uint32_t mask) {
  std::size_t idx = 0;
  for (std::size_t i = levels.size(); i-- > 0;) {
    if (mask & (1u << i)) idx = idx * levels[i] + coords[i];
  }
  return idx;
}

std::size_t projected_size(std::span<const std::size_t> levels, std::uint32_t mask) {
  std::size_t n = 1;
  for (std::size_t i = 0; i < levels.size(); ++i)
    if (mask & (1u << i)) n *= levels[i];
  return n;
}

std::string effect_name(std::uint32_t mask, std::span<const std::string> names) {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (mask & (1u << i)) {
      if (!out.empty()) out += ":";
      out += names[i];
    }
  }
  return out;
}

void finalize(AnovaEffect& e, double ms_error, double df_error, double ss_total) {
  e.ms = e.df > 0 ? e.ss / static_cast<double>(e.df) : 0.0;
  e.eta_squared = ss_total > 0.0 ? e.ss / ss_total : 0.0;
  if (e.df > 0 && ms_error > 0.0 && df_error > 0.0) {
    e.f = e.ms / ms_error;
    e.p_value = f_sf(e.f, static_cast<double>(e.df), df_error);
  } else {
    e.f = 0.0;
    e.p_value = 1.0;
  }
}

}  // namespace

const AnovaEffect& AnovaTable::effect(const std::string& name) const {
  for (const auto& e : effects)
    if (e.name == name) return e;
  if (name == "Error") return error;
  if (name == "Total") return total;
  throw std::out_of_range("AnovaTable: no effect named '" + name + "'");
}

std::string AnovaTable::to_string() const {
  std::ostringstream os;
  os << std::left << std::setw(28) << "Effect" << std::right << std::setw(14) << "SS"
     << std::setw(7) << "df" << std::setw(14) << "MS" << std::setw(11) << "F"
     << std::setw(12) << "p" << std::setw(9) << "eta^2" << "\n";
  auto row = [&os](const AnovaEffect& e, bool with_f) {
    os << std::left << std::setw(28) << e.name << std::right << std::fixed
       << std::setprecision(4) << std::setw(14) << e.ss << std::setw(7) << e.df
       << std::setw(14) << e.ms;
    if (with_f) {
      os << std::setw(11) << e.f << std::setw(12) << std::setprecision(6) << e.p_value;
    } else {
      os << std::setw(11) << "-" << std::setw(12) << "-";
    }
    os << std::setw(9) << std::setprecision(3) << e.eta_squared << "\n";
  };
  for (const auto& e : effects) row(e, true);
  row(error, false);
  row(total, false);
  return os.str();
}

AnovaTable one_way_anova(std::span<const std::vector<double>> groups,
                         const std::string& factor_name) {
  if (groups.size() < 2) throw std::invalid_argument("one_way_anova: need >= 2 groups");
  std::size_t n_total = 0;
  double grand_sum = 0.0;
  for (const auto& g : groups) {
    if (g.empty()) throw std::invalid_argument("one_way_anova: empty group");
    n_total += g.size();
    for (double x : g) grand_sum += x;
  }
  if (n_total <= groups.size())
    throw std::invalid_argument("one_way_anova: no error degrees of freedom");
  const double grand_mean = grand_sum / static_cast<double>(n_total);

  double ss_between = 0.0, ss_total = 0.0;
  for (const auto& g : groups) {
    double mean = 0.0;
    for (double x : g) mean += x;
    mean /= static_cast<double>(g.size());
    ss_between += static_cast<double>(g.size()) * (mean - grand_mean) * (mean - grand_mean);
    for (double x : g) ss_total += (x - grand_mean) * (x - grand_mean);
  }
  const double ss_within = ss_total - ss_between;

  AnovaTable t;
  AnovaEffect between;
  between.name = factor_name;
  between.ss = ss_between;
  between.df = groups.size() - 1;
  t.error.name = "Error";
  t.error.ss = ss_within;
  t.error.df = n_total - groups.size();
  t.error.ms = t.error.ss / static_cast<double>(t.error.df);
  t.total.name = "Total";
  t.total.ss = ss_total;
  t.total.df = n_total - 1;
  t.total.eta_squared = 1.0;
  t.error.eta_squared = ss_total > 0.0 ? ss_within / ss_total : 0.0;
  finalize(between, t.error.ms, static_cast<double>(t.error.df), ss_total);
  t.effects.push_back(between);
  return t;
}

AnovaTable factorial_anova(std::span<const std::size_t> levels,
                           std::span<const std::string> factor_names,
                           std::span<const std::vector<double>> cells,
                           std::size_t max_interaction_order) {
  const std::size_t k = levels.size();
  if (k == 0 || k > 16) throw std::invalid_argument("factorial_anova: need 1..16 factors");
  if (factor_names.size() != k)
    throw std::invalid_argument("factorial_anova: names/levels size mismatch");
  std::size_t ncells = 1;
  for (std::size_t l : levels) {
    if (l < 2) throw std::invalid_argument("factorial_anova: every factor needs >= 2 levels");
    ncells *= l;
  }
  if (cells.size() != ncells)
    throw std::invalid_argument("factorial_anova: cell count mismatch");
  const std::size_t r = cells.front().size();
  if (r == 0) throw std::invalid_argument("factorial_anova: empty cell");
  for (const auto& c : cells)
    if (c.size() != r)
      throw std::invalid_argument("factorial_anova: unbalanced design (replicates differ)");

  const auto n_total = static_cast<double>(ncells * r);
  double grand = 0.0;
  for (const auto& c : cells)
    for (double x : c) grand += x;
  grand /= n_total;

  double ss_total = 0.0;
  for (const auto& c : cells)
    for (double x : c) ss_total += (x - grand) * (x - grand);

  // Mean tables for every factor subset: means[mask][projected index].
  const std::uint32_t full = (k == 32) ? ~0u : ((1u << k) - 1);
  std::vector<std::vector<double>> means(std::size_t{1} << k);
  std::vector<std::size_t> coords(k);
  for (std::uint32_t mask = 0; mask <= full; ++mask) {
    std::vector<double> sum(projected_size(levels, mask), 0.0);
    std::vector<std::size_t> cnt(sum.size(), 0);
    for (std::size_t c = 0; c < ncells; ++c) {
      decode_cell(c, levels, coords);
      const std::size_t pi = project(coords, levels, mask);
      for (double x : cells[c]) {
        sum[pi] += x;
        ++cnt[pi];
      }
    }
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] /= static_cast<double>(cnt[i]);
    means[mask] = std::move(sum);
    if (mask == full) break;  // avoid overflow when k == 32
  }

  // Effect sums of squares by Moebius inclusion-exclusion over mean tables.
  struct RawEffect {
    std::uint32_t mask;
    double ss;
    std::size_t df;
  };
  std::vector<RawEffect> raw;
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    const std::size_t cells_s = projected_size(levels, mask);
    double ss = 0.0;
    // Enumerate the level combinations of the factors in `mask` through the
    // projected index of the FULL-coordinate enumeration restricted to mask.
    // Walk each projected cell once by iterating its own mixed radix.
    std::vector<std::size_t> sub_coords(k, 0);
    for (std::size_t pi = 0; pi < cells_s; ++pi) {
      // Decode pi into coordinates of the masked factors.
      std::size_t rem = pi;
      for (std::size_t i = 0; i < k; ++i) {
        if (mask & (1u << i)) {
          sub_coords[i] = rem % levels[i];
          rem /= levels[i];
        } else {
          sub_coords[i] = 0;
        }
      }
      // Inclusion-exclusion over subsets T of mask.
      double e = 0.0;
      std::uint32_t t = mask;
      const int sbits = std::popcount(mask);
      for (;;) {
        const int tbits = std::popcount(t);
        const double sign = ((sbits - tbits) % 2 == 0) ? 1.0 : -1.0;
        const double m = (t == 0) ? grand : means[t][project(sub_coords, levels, t)];
        e += sign * m;
        if (t == 0) break;
        t = (t - 1) & mask;
      }
      ss += e * e;
    }
    double mult = static_cast<double>(r);
    for (std::size_t i = 0; i < k; ++i)
      if (!(mask & (1u << i))) mult *= static_cast<double>(levels[i]);
    std::size_t df = 1;
    for (std::size_t i = 0; i < k; ++i)
      if (mask & (1u << i)) df *= levels[i] - 1;
    raw.push_back({mask, ss * mult, df});
    if (mask == full) break;
  }

  // Pure (replication) error.
  double ss_effects_all = 0.0;
  for (const auto& e : raw) ss_effects_all += e.ss;
  double ss_error = ss_total - ss_effects_all;
  if (ss_error < 0.0) ss_error = 0.0;  // numerical guard
  std::size_t df_error = ncells * (r - 1);

  // Pool interactions above max_interaction_order into error.
  AnovaTable t;
  for (const auto& e : raw) {
    if (static_cast<std::size_t>(std::popcount(e.mask)) > max_interaction_order) {
      ss_error += e.ss;
      df_error += e.df;
      continue;
    }
    AnovaEffect eff;
    eff.name = effect_name(e.mask, factor_names);
    eff.ss = e.ss;
    eff.df = e.df;
    t.effects.push_back(eff);
  }
  if (df_error == 0)
    throw std::invalid_argument(
        "factorial_anova: no error degrees of freedom; add replicates or lower "
        "max_interaction_order");

  t.error.name = "Error";
  t.error.ss = ss_error;
  t.error.df = df_error;
  t.error.ms = ss_error / static_cast<double>(df_error);
  t.error.eta_squared = ss_total > 0.0 ? ss_error / ss_total : 0.0;
  t.total.name = "Total";
  t.total.ss = ss_total;
  t.total.df = ncells * r - 1;
  t.total.eta_squared = 1.0;
  for (auto& e : t.effects)
    finalize(e, t.error.ms, static_cast<double>(t.error.df), ss_total);
  return t;
}

}  // namespace divsec::stats
