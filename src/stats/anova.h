// anova.h — fixed-effects ANalysis Of VAriance.
//
// Step 3 of the paper: "allocate the variability of the security
// indicators ... to the component(s) responsible for such variability."
// We implement one-way ANOVA and balanced N-way factorial ANOVA with all
// interaction terms, reporting for each effect the sum of squares, degrees
// of freedom, F statistic, p-value, and eta^2 (the variance share the
// paper's assessment step ranks components by).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace divsec::stats {

/// One row of an ANOVA table.
struct AnovaEffect {
  std::string name;       // e.g. "OS", "OS:Firewall", "Error", "Total"
  double ss = 0.0;        // sum of squares
  std::size_t df = 0;     // degrees of freedom
  double ms = 0.0;        // mean square (ss/df)
  double f = 0.0;         // F statistic vs error (0 when undefined)
  double p_value = 1.0;   // upper-tail F probability
  double eta_squared = 0.0;  // ss / ss_total: variance share
};

struct AnovaTable {
  std::vector<AnovaEffect> effects;  // factorial effects, sorted as produced
  AnovaEffect error;
  AnovaEffect total;

  /// Lookup an effect row by name; throws std::out_of_range if absent.
  [[nodiscard]] const AnovaEffect& effect(const std::string& name) const;
  /// Render as an aligned text table (for benches and reports).
  [[nodiscard]] std::string to_string() const;
};

/// One-way ANOVA over g groups of observations.
[[nodiscard]] AnovaTable one_way_anova(std::span<const std::vector<double>> groups,
                                       const std::string& factor_name = "Factor");

/// Balanced N-way full-factorial ANOVA.
///
/// `levels[i]` is the number of levels of factor i; `cells` holds the
/// replicate observations for each cell, indexed mixed-radix with factor 0
/// fastest (the FactorSpace::decode convention). Every cell must have the
/// same replicate count r; r >= 2 is required for an error term (with
/// r == 1 the highest-order interaction is pooled into error).
/// `max_interaction_order` limits reported interactions (higher-order terms
/// are pooled into error).
[[nodiscard]] AnovaTable factorial_anova(std::span<const std::size_t> levels,
                                         std::span<const std::string> factor_names,
                                         std::span<const std::vector<double>> cells,
                                         std::size_t max_interaction_order = 2);

}  // namespace divsec::stats
