// tdigest.h — the mergeable t-digest quantile sketch of Dunning & Ertl,
// "Computing Extremely Accurate Quantiles Using t-Digests" (2019).
//
// A t-digest summarizes a distribution as a short list of (mean, weight)
// centroids whose sizes are bounded by the k1 scale function: centroids
// near the median may grow large, centroids near the tails stay small,
// so tail quantiles keep high resolution at O(compression) memory. The
// property that matters here is that merge() does NOT accumulate bias
// the way the P² pooled-CDF merge does: merging concatenates centroid
// lists and re-compresses, so a deep merge tree (superblocks × shards ×
// adaptive rounds) ends up with the same kind of digest a single stream
// would have produced, and the measured error stays well under 1% where
// the P² merge drifted +4–23%.
//
// Determinism contract (what the distributed sweep relies on):
//  * the centroid list is the complete state — there is no hidden
//    unsorted buffer, so state()/from_state() round-trips exactly and
//    the restored sketch behaves bit-identically ever after;
//  * add(), merge() and compress() are deterministic functions of the
//    current state (compression is triggered purely by centroid count),
//    so a reduction that merges partials in a fixed ascending order
//    yields thread-count- and shard-cut-independent bytes;
//  * centroid weights are integer counts (std::uint64_t) — they merge
//    exactly and serialize as varints in the v4 state codec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace divsec::stats {

class TDigest {
 public:
  /// One cluster of the sketch: `weight` observations with the given
  /// running mean.
  struct Centroid {
    double mean = 0.0;
    std::uint64_t weight = 0;
  };

  /// The complete internal state, exposed for the distributed-sweep
  /// serialization layer. `centroids` are sorted by non-decreasing mean;
  /// the observation count is the sum of the weights (not stored
  /// separately). from_state(state()) restores the sketch exactly —
  /// every subsequent add/merge/quantile is bit-identical to the
  /// original's.
  struct State {
    double compression = 100.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<Centroid> centroids;
  };

  /// compression (δ) bounds the compressed centroid count; larger is
  /// more accurate and bigger. Throws std::invalid_argument unless
  /// finite and >= 10.
  explicit TDigest(double compression = 100.0);

  [[nodiscard]] State state() const;
  /// Restores from exported state; validates the invariants (compression
  /// >= 10, positive weights, finite non-decreasing means bracketed by
  /// [min, max]) and throws std::invalid_argument on corrupt state.
  [[nodiscard]] static TDigest from_state(const State& s);

  void add(double x);

  /// Combine another sketch with the same compression
  /// (std::invalid_argument otherwise; either side may be empty).
  /// Deterministic in (this state, other state) — merge order is the
  /// caller's contract, as with every reducer in this codebase.
  void merge(const TDigest& other);

  /// Estimate of the q-quantile, q in [0, 1] (std::invalid_argument
  /// otherwise); 0 when empty. Linear interpolation between centroid
  /// midpoints, anchored at the exact min/max.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t count() const noexcept {
    return static_cast<std::size_t>(n_);
  }
  [[nodiscard]] double compression() const noexcept { return compression_; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] std::size_t centroid_count() const noexcept {
    return centroids_.size();
  }

  /// Collapse the centroid list to its k1-bounded form. Called
  /// automatically when the list outgrows 2×compression; idempotent —
  /// compressing a compressed digest is a no-op (pinned by test).
  void compress();

 private:
  [[nodiscard]] double k_to_q(double k) const noexcept;
  [[nodiscard]] double q_to_k(double q) const noexcept;

  double compression_ = 100.0;
  std::uint64_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<Centroid> centroids_;  // sorted by non-decreasing mean
};

}  // namespace divsec::stats
