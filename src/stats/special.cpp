#include "stats/special.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace divsec::stats {

namespace {

constexpr int kMaxIter = 500;
constexpr double kEps = 3.0e-14;
constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;

/// P(a,x) by its power series, valid/fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < kMaxIter; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Q(a,x) by modified Lentz continued fraction, valid/fast for x >= a + 1.
double gamma_q_contfrac(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

/// Continued fraction for the incomplete beta function (Lentz).
double betacf(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double reg_gamma_p(double a, double x) {
  if (!(a > 0.0)) throw std::invalid_argument("reg_gamma_p: a must be > 0");
  if (x < 0.0) throw std::invalid_argument("reg_gamma_p: x must be >= 0");
  if (x == 0.0) return 0.0;
  return (x < a + 1.0) ? gamma_p_series(a, x) : 1.0 - gamma_q_contfrac(a, x);
}

double reg_gamma_q(double a, double x) {
  if (!(a > 0.0)) throw std::invalid_argument("reg_gamma_q: a must be > 0");
  if (x < 0.0) throw std::invalid_argument("reg_gamma_q: x must be >= 0");
  if (x == 0.0) return 1.0;
  return (x < a + 1.0) ? 1.0 - gamma_p_series(a, x) : gamma_q_contfrac(a, x);
}

double reg_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0))
    throw std::invalid_argument("reg_beta: a and b must be > 0");
  if (x < 0.0 || x > 1.0) throw std::invalid_argument("reg_beta: x must be in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double bt = std::exp(std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                             a * std::log(x) + b * std::log1p(-x));
  // Use the symmetry transform so the continued fraction converges fast.
  if (x < (a + 1.0) / (a + b + 2.0)) return bt * betacf(a, b, x) / a;
  return 1.0 - bt * betacf(b, a, 1.0 - x) / b;
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0))
    throw std::invalid_argument("normal_quantile: p must be in (0,1)");
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step drives the error below 1e-12.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double student_t_cdf(double t, double nu) {
  if (!(nu > 0.0)) throw std::invalid_argument("student_t_cdf: nu must be > 0");
  const double x = nu / (nu + t * t);
  const double tail = 0.5 * reg_beta(0.5 * nu, 0.5, x);
  return (t >= 0.0) ? 1.0 - tail : tail;
}

double student_t_quantile(double p, double nu) {
  if (!(p > 0.0 && p < 1.0))
    throw std::invalid_argument("student_t_quantile: p must be in (0,1)");
  // Bisection seeded by the normal quantile; the t CDF is strictly
  // increasing so this converges unconditionally.
  double lo = normal_quantile(p) - 1.0;
  double hi = normal_quantile(p) + 1.0;
  while (student_t_cdf(lo, nu) > p) lo *= 2.0, lo -= 1.0;
  while (student_t_cdf(hi, nu) < p) hi *= 2.0, hi += 1.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, nu) < p)
      lo = mid;
    else
      hi = mid;
    if (hi - lo < 1e-12 * (1.0 + std::fabs(hi))) break;
  }
  return 0.5 * (lo + hi);
}

double f_cdf(double x, double d1, double d2) {
  if (!(d1 > 0.0) || !(d2 > 0.0))
    throw std::invalid_argument("f_cdf: degrees of freedom must be > 0");
  if (x <= 0.0) return 0.0;
  return reg_beta(0.5 * d1, 0.5 * d2, d1 * x / (d1 * x + d2));
}

double f_sf(double x, double d1, double d2) {
  if (!(d1 > 0.0) || !(d2 > 0.0))
    throw std::invalid_argument("f_sf: degrees of freedom must be > 0");
  if (x <= 0.0) return 1.0;
  // Compute the tail directly through the complementary beta argument to
  // keep precision for large F (tiny p-values).
  return reg_beta(0.5 * d2, 0.5 * d1, d2 / (d1 * x + d2));
}

double chi2_cdf(double x, double k) {
  if (!(k > 0.0)) throw std::invalid_argument("chi2_cdf: k must be > 0");
  if (x <= 0.0) return 0.0;
  return reg_gamma_p(0.5 * k, 0.5 * x);
}

double chi2_sf(double x, double k) {
  if (!(k > 0.0)) throw std::invalid_argument("chi2_sf: k must be > 0");
  if (x <= 0.0) return 1.0;
  return reg_gamma_q(0.5 * k, 0.5 * x);
}

}  // namespace divsec::stats
