#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/special.h"

namespace divsec::stats {

void OnlineStats::merge(const OnlineStats& o) noexcept {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(o.n_);
  const double tot = n + m;
  m2_ += o.m2_ + delta * delta * n * m / tot;
  mean_ += delta * m / tot;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::sem() const noexcept {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

ConfidenceInterval mean_confidence_interval(const OnlineStats& s, double level) {
  if (s.count() < 2)
    throw std::invalid_argument("mean_confidence_interval: need >= 2 samples");
  if (!(level > 0.0 && level < 1.0))
    throw std::invalid_argument("mean_confidence_interval: level must be in (0,1)");
  const double t = student_t_quantile(0.5 + 0.5 * level,
                                      static_cast<double>(s.count() - 1));
  const double h = t * s.sem();
  return {s.mean() - h, s.mean() + h, level};
}

WelchTest welch_t_test(const OnlineStats& a, const OnlineStats& b) {
  if (a.count() < 2 || b.count() < 2)
    throw std::invalid_argument("welch_t_test: need >= 2 samples per side");
  const double va = a.variance() / static_cast<double>(a.count());
  const double vb = b.variance() / static_cast<double>(b.count());
  WelchTest r;
  r.mean_difference = a.mean() - b.mean();
  if (va + vb <= 0.0) {
    // Degenerate: identical constants compare equal; different constants
    // differ with certainty.
    r.t = r.mean_difference == 0.0 ? 0.0
                                   : std::numeric_limits<double>::infinity();
    r.df = static_cast<double>(a.count() + b.count() - 2);
    r.p_value = r.mean_difference == 0.0 ? 1.0 : 0.0;
    return r;
  }
  r.t = r.mean_difference / std::sqrt(va + vb);
  // Welch-Satterthwaite degrees of freedom.
  const double na = static_cast<double>(a.count());
  const double nb = static_cast<double>(b.count());
  r.df = (va + vb) * (va + vb) /
         (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  r.p_value = 2.0 * (1.0 - student_t_cdf(std::fabs(r.t), r.df));
  return r;
}

ProportionTest two_proportion_z_test(std::size_t successes_a, std::size_t n_a,
                                     std::size_t successes_b, std::size_t n_b) {
  if (n_a == 0 || n_b == 0)
    throw std::invalid_argument("two_proportion_z_test: empty sample");
  if (successes_a > n_a || successes_b > n_b)
    throw std::invalid_argument("two_proportion_z_test: successes > n");
  const double pa = static_cast<double>(successes_a) / static_cast<double>(n_a);
  const double pb = static_cast<double>(successes_b) / static_cast<double>(n_b);
  ProportionTest r;
  r.difference = pa - pb;
  const double pooled = static_cast<double>(successes_a + successes_b) /
                        static_cast<double>(n_a + n_b);
  const double se = std::sqrt(pooled * (1.0 - pooled) *
                              (1.0 / static_cast<double>(n_a) +
                               1.0 / static_cast<double>(n_b)));
  if (se <= 0.0) {
    r.z = 0.0;
    r.p_value = 1.0;
    return r;
  }
  r.z = r.difference / se;
  r.p_value = 2.0 * (1.0 - normal_cdf(std::fabs(r.z)));
  return r;
}

double quantile(std::span<const double> data, double q) {
  if (data.empty()) throw std::invalid_argument("quantile: empty sample");
  if (!(q >= 0.0 && q <= 1.0)) throw std::invalid_argument("quantile: q in [0,1]");
  std::vector<double> v(data.begin(), data.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  if (i + 1 >= v.size()) return v.back();
  const double frac = pos - static_cast<double>(i);
  return v[i] + frac * (v[i + 1] - v[i]);
}

Summary summarize(std::span<const double> data) {
  if (data.empty()) throw std::invalid_argument("summarize: empty sample");
  OnlineStats os;
  for (double x : data) os.add(x);
  Summary s;
  s.n = data.size();
  s.mean = os.mean();
  s.stddev = os.stddev();
  s.min = os.min();
  s.max = os.max();
  s.p25 = quantile(data, 0.25);
  s.median = quantile(data, 0.50);
  s.p75 = quantile(data, 0.75);
  s.p95 = quantile(data, 0.95);
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need >= 1 bin");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long long>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<long long>(idx, 0, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

double Histogram::density(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

BatchMeans::BatchMeans(std::size_t batch_size) : batch_size_(batch_size) {
  if (batch_size == 0) throw std::invalid_argument("BatchMeans: batch_size must be > 0");
}

void BatchMeans::add(double x) {
  batch_sum_ += x;
  if (++in_batch_ == batch_size_) {
    batches_.add(batch_sum_ / static_cast<double>(batch_size_));
    batch_sum_ = 0.0;
    in_batch_ = 0;
  }
}

std::size_t BatchMeans::completed_batches() const noexcept { return batches_.count(); }

ConfidenceInterval BatchMeans::confidence_interval(double level) const {
  return mean_confidence_interval(batches_, level);
}

}  // namespace divsec::stats
