// quantile_sketch.h — the common contract every streaming quantile
// sketch in this codebase satisfies.
//
// Two implementations exist: P2Quantile (Jain & Chlamtac's P², kept as
// the O(1)-memory single-stream reference) and TDigest (Dunning &
// Ertl's mergeable digest, the one the measurement engine aggregates
// with — its merge does not accumulate the pooled-CDF bias that P²'s
// does under deep merge trees). They differ in query surface — P² pins
// one quantile at construction (value()/probability()), a t-digest
// answers any quantile(q) — so the shared contract is the streaming /
// reduction / serialization surface, expressed as a concept rather than
// a virtual base: sketches live on the hot reduction path and in
// serialized shard state, where static dispatch and exact state structs
// matter.
#pragma once

#include <concepts>
#include <cstddef>

#include "stats/p2_quantile.h"
#include "stats/tdigest.h"

namespace divsec::stats {

/// A streaming quantile sketch: O(1)-amortized add, a merge that is a
/// deterministic function of the two operand states (merge *order* is
/// the caller's contract, per the blocked-reduction convention), and an
/// exact state()/from_state() round-trip for the distributed-sweep
/// serialization layer.
template <typename S>
concept QuantileSketch =
    std::copyable<S> && requires(S sketch, const S& other,
                                 const typename S::State& state) {
      sketch.add(0.0);
      sketch.merge(other);
      { other.count() } -> std::convertible_to<std::size_t>;
      { other.state() } -> std::same_as<typename S::State>;
      { S::from_state(state) } -> std::same_as<S>;
    };

static_assert(QuantileSketch<P2Quantile>);
static_assert(QuantileSketch<TDigest>);

}  // namespace divsec::stats
