// rng.h — deterministic pseudo-random number generation for divsec.
//
// All stochastic code in the library draws from Rng, a xoshiro256**
// generator seeded through SplitMix64. Independent replications and
// independent model substreams are derived with Rng::stream(), which
// hashes (seed, stream-id) so that streams are statistically independent
// and reproducible across platforms (we never rely on libstdc++
// distribution implementations for cross-platform stability).
#pragma once

#include <cstdint>
#include <limits>

namespace divsec::stats {

/// SplitMix64 step; used for seeding and stream derivation.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed the generator. Two Rng objects with the same (seed, stream)
  /// produce identical sequences.
  explicit Rng(std::uint64_t seed = 0xD1755E5EC0FEE5ULL,
               std::uint64_t stream = 0) noexcept {
    reseed(seed, stream);
  }

  void reseed(std::uint64_t seed, std::uint64_t stream = 0) noexcept {
    // Mix the stream id into the seed domain before expanding the state;
    // the golden-ratio multiplier decorrelates adjacent stream ids.
    std::uint64_t sm = seed ^ (stream * 0x9E3779B97F4A7C15ULL + 0x853C49E6748FEA9BULL);
    for (auto& w : s_) w = splitmix64(sm);
  }

  /// Derive an independent child generator. Deterministic in (this
  /// generator's seed material, id): derivation does not consume state.
  [[nodiscard]] Rng stream(std::uint64_t id) const noexcept {
    std::uint64_t sm = s_[0] ^ (s_[3] + 0x165667B19E3779F9ULL * (id + 1));
    Rng child;
    for (auto& w : child.s_) w = splitmix64(sm);
    return child;
  }

  [[nodiscard]] result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace divsec::stats
