#include "stats/distributions.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace divsec::stats {

double sample_standard_normal(Rng& rng) noexcept {
  for (;;) {
    const double u = 2.0 * rng.uniform() - 1.0;
    const double v = 2.0 * rng.uniform() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

namespace {

double sample_one(const Deterministic& d, Rng&) { return d.value; }
double sample_one(const Uniform& d, Rng& rng) { return rng.uniform(d.lo, d.hi); }

double sample_one(const Exponential& d, Rng& rng) {
  // Inverse transform; 1 - uniform() is in (0, 1] so log() is finite.
  return -std::log(1.0 - rng.uniform()) / d.rate;
}

double sample_one(const Weibull& d, Rng& rng) {
  return d.scale * std::pow(-std::log(1.0 - rng.uniform()), 1.0 / d.shape);
}

double sample_one(const Lognormal& d, Rng& rng) {
  return std::exp(d.mu + d.sigma * sample_standard_normal(rng));
}

double sample_one(const Normal& d, Rng& rng) {
  return d.mean + d.sd * sample_standard_normal(rng);
}

double sample_one(const Erlang& d, Rng& rng) {
  double acc = 0.0;
  for (int i = 0; i < d.k; ++i) acc += -std::log(1.0 - rng.uniform());
  return acc / d.rate;
}

double sample_one(const Triangular& d, Rng& rng) {
  const double u = rng.uniform();
  const double span = d.hi - d.lo;
  if (span <= 0.0) return d.lo;
  const double fc = (d.mode - d.lo) / span;
  if (u < fc) return d.lo + std::sqrt(u * span * (d.mode - d.lo));
  return d.hi - std::sqrt((1.0 - u) * span * (d.hi - d.mode));
}

}  // namespace

double Distribution::sample(Rng& rng) const {
  return std::visit([&rng](const auto& d) { return sample_one(d, rng); }, v_);
}

double Distribution::mean() const {
  struct V {
    double operator()(const Deterministic& d) const { return d.value; }
    double operator()(const Uniform& d) const { return 0.5 * (d.lo + d.hi); }
    double operator()(const Exponential& d) const { return 1.0 / d.rate; }
    double operator()(const Weibull& d) const {
      return d.scale * std::tgamma(1.0 + 1.0 / d.shape);
    }
    double operator()(const Lognormal& d) const {
      return std::exp(d.mu + 0.5 * d.sigma * d.sigma);
    }
    double operator()(const Normal& d) const { return d.mean; }
    double operator()(const Erlang& d) const { return d.k / d.rate; }
    double operator()(const Triangular& d) const {
      return (d.lo + d.mode + d.hi) / 3.0;
    }
  };
  return std::visit(V{}, v_);
}

double Distribution::variance() const {
  struct V {
    double operator()(const Deterministic&) const { return 0.0; }
    double operator()(const Uniform& d) const {
      const double w = d.hi - d.lo;
      return w * w / 12.0;
    }
    double operator()(const Exponential& d) const { return 1.0 / (d.rate * d.rate); }
    double operator()(const Weibull& d) const {
      const double g1 = std::tgamma(1.0 + 1.0 / d.shape);
      const double g2 = std::tgamma(1.0 + 2.0 / d.shape);
      return d.scale * d.scale * (g2 - g1 * g1);
    }
    double operator()(const Lognormal& d) const {
      const double s2 = d.sigma * d.sigma;
      return (std::exp(s2) - 1.0) * std::exp(2.0 * d.mu + s2);
    }
    double operator()(const Normal& d) const { return d.sd * d.sd; }
    double operator()(const Erlang& d) const { return d.k / (d.rate * d.rate); }
    double operator()(const Triangular& d) const {
      return (d.lo * d.lo + d.mode * d.mode + d.hi * d.hi - d.lo * d.mode -
              d.lo * d.hi - d.mode * d.hi) /
             18.0;
    }
  };
  return std::visit(V{}, v_);
}

std::string Distribution::to_string() const {
  std::ostringstream os;
  struct V {
    std::ostringstream& os;
    void operator()(const Deterministic& d) const { os << "Deterministic(" << d.value << ")"; }
    void operator()(const Uniform& d) const { os << "Uniform(" << d.lo << "," << d.hi << ")"; }
    void operator()(const Exponential& d) const { os << "Exponential(rate=" << d.rate << ")"; }
    void operator()(const Weibull& d) const {
      os << "Weibull(shape=" << d.shape << ",scale=" << d.scale << ")";
    }
    void operator()(const Lognormal& d) const {
      os << "Lognormal(mu=" << d.mu << ",sigma=" << d.sigma << ")";
    }
    void operator()(const Normal& d) const { os << "Normal(" << d.mean << "," << d.sd << ")"; }
    void operator()(const Erlang& d) const { os << "Erlang(k=" << d.k << ",rate=" << d.rate << ")"; }
    void operator()(const Triangular& d) const {
      os << "Triangular(" << d.lo << "," << d.mode << "," << d.hi << ")";
    }
  };
  std::visit(V{os}, v_);
  return os.str();
}

void Distribution::validate() const {
  struct V {
    void operator()(const Deterministic&) const {}
    void operator()(const Uniform& d) const {
      if (d.lo > d.hi) throw std::invalid_argument("Uniform: lo > hi");
    }
    void operator()(const Exponential& d) const {
      if (!(d.rate > 0.0)) throw std::invalid_argument("Exponential: rate must be > 0");
    }
    void operator()(const Weibull& d) const {
      if (!(d.shape > 0.0) || !(d.scale > 0.0))
        throw std::invalid_argument("Weibull: shape and scale must be > 0");
    }
    void operator()(const Lognormal& d) const {
      if (d.sigma < 0.0) throw std::invalid_argument("Lognormal: sigma must be >= 0");
    }
    void operator()(const Normal& d) const {
      if (d.sd < 0.0) throw std::invalid_argument("Normal: sd must be >= 0");
    }
    void operator()(const Erlang& d) const {
      if (d.k < 1) throw std::invalid_argument("Erlang: k must be >= 1");
      if (!(d.rate > 0.0)) throw std::invalid_argument("Erlang: rate must be > 0");
    }
    void operator()(const Triangular& d) const {
      if (d.lo > d.mode || d.mode > d.hi)
        throw std::invalid_argument("Triangular: requires lo <= mode <= hi");
    }
  };
  std::visit(V{}, v_);
}

}  // namespace divsec::stats
