#include "stats/sensitivity.h"

#include <algorithm>
#include <stdexcept>

namespace divsec::stats {

std::vector<OatFactorResult> one_at_a_time(
    const FactorSpace& space, std::span<const int> baseline,
    const std::function<double(std::span<const int>)>& f) {
  if (baseline.size() != space.factor_count())
    throw std::invalid_argument("one_at_a_time: baseline arity mismatch");
  std::vector<int> config(baseline.begin(), baseline.end());
  // Validate the baseline up front (encode throws on out-of-range levels).
  (void)space.encode(config);

  std::vector<OatFactorResult> out;
  out.reserve(space.factor_count());
  for (std::size_t i = 0; i < space.factor_count(); ++i) {
    OatFactorResult r;
    r.factor = space.factor(i).name;
    const std::size_t n_levels = space.factor(i).levels.size();
    r.responses.reserve(n_levels);
    for (std::size_t l = 0; l < n_levels; ++l) {
      config[i] = static_cast<int>(l);
      const double y = f(config);
      r.responses.push_back(y);
      if (l == 0 || y < r.min_response) r.min_response = y;
      if (l == 0 || y > r.max_response) r.max_response = y;
    }
    config[i] = baseline[i];
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<OatFactorResult> tornado(std::vector<OatFactorResult> results) {
  std::sort(results.begin(), results.end(),
            [](const OatFactorResult& a, const OatFactorResult& b) {
              return a.swing() > b.swing();
            });
  return results;
}

std::vector<AnovaEffect> rank_by_variance_share(const AnovaTable& table) {
  std::vector<AnovaEffect> effects = table.effects;
  std::sort(effects.begin(), effects.end(),
            [](const AnovaEffect& a, const AnovaEffect& b) {
              return a.eta_squared > b.eta_squared;
            });
  return effects;
}

}  // namespace divsec::stats
