// sensitivity.h — one-at-a-time sensitivity analysis and effect ranking.
//
// The paper's case study reports a "preliminary sensitivity analysis".
// This module implements the classic OAT sweep over a FactorSpace plus
// tornado-style ranking, and a convenience ranking over ANOVA eta^2.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "stats/anova.h"
#include "stats/doe.h"

namespace divsec::stats {

/// Result of sweeping one factor across its levels with every other factor
/// pinned at the baseline configuration.
struct OatFactorResult {
  std::string factor;
  std::vector<double> responses;  // response at each level of the factor
  double min_response = 0.0;
  double max_response = 0.0;
  /// Tornado swing: max - min across the factor's levels.
  [[nodiscard]] double swing() const noexcept { return max_response - min_response; }
};

/// Evaluate `f` (a deterministic or replication-averaged response) over a
/// one-at-a-time sweep. `baseline` holds the level index each factor is
/// pinned to while another factor is swept.
[[nodiscard]] std::vector<OatFactorResult> one_at_a_time(
    const FactorSpace& space, std::span<const int> baseline,
    const std::function<double(std::span<const int>)>& f);

/// Sort a copy of the OAT results by descending swing (the tornado chart
/// order).
[[nodiscard]] std::vector<OatFactorResult> tornado(std::vector<OatFactorResult> results);

/// Effects of an ANOVA table sorted by descending eta^2 (variance share);
/// the paper's criterion for "components valuable to diversify".
[[nodiscard]] std::vector<AnovaEffect> rank_by_variance_share(const AnovaTable& table);

}  // namespace divsec::stats
