// survival.h — Kaplan-Meier estimation for censored time data.
//
// Time-To-Attack and Time-To-Security-Failure samples are right-censored
// at the simulation horizon (an undetected / unfinished run tells us only
// that the event time exceeds the horizon). Averaging censored-at-horizon
// values (what the ANOVA cells do, documented there) biases the mean
// down; the Kaplan-Meier product-limit estimator handles censoring
// correctly and yields survival curves, median survival, and restricted
// mean survival time — the right summary statistics for E3/E4.
#pragma once

#include <optional>
#include <vector>

namespace divsec::stats {

/// One observation: time of event, or time of censoring.
struct SurvivalObservation {
  double time = 0.0;
  bool event = true;  // false = right-censored at `time`
};

/// A step of the Kaplan-Meier curve: S(t) drops to `survival` at `time`.
struct KaplanMeierStep {
  double time = 0.0;
  double survival = 1.0;
  std::size_t at_risk = 0;
  std::size_t events = 0;
};

class KaplanMeier {
 public:
  /// Builds the product-limit estimate. Observations need not be sorted.
  explicit KaplanMeier(std::vector<SurvivalObservation> observations);

  [[nodiscard]] const std::vector<KaplanMeierStep>& steps() const noexcept {
    return steps_;
  }

  /// S(t): probability the event has not occurred by time t.
  [[nodiscard]] double survival_at(double t) const noexcept;

  /// Smallest event time with S(t) <= 1 - q (e.g. q = 0.5 -> median);
  /// nullopt when the curve never drops that far (heavy censoring).
  [[nodiscard]] std::optional<double> quantile(double q) const;

  /// Median survival time (sugar for quantile(0.5)).
  [[nodiscard]] std::optional<double> median() const { return quantile(0.5); }

  /// Restricted mean survival time: integral of S(t) over [0, tau]
  /// (the standard horizon-limited mean under censoring).
  [[nodiscard]] double restricted_mean(double tau) const;

  [[nodiscard]] std::size_t observation_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t event_count() const noexcept { return events_; }
  [[nodiscard]] std::size_t censored_count() const noexcept { return n_ - events_; }

 private:
  std::vector<KaplanMeierStep> steps_;
  std::size_t n_ = 0;
  std::size_t events_ = 0;
};

}  // namespace divsec::stats
