// survival.h — censoring-aware estimation for event-time data.
//
// Time-To-Attack and Time-To-Security-Failure samples are right-censored
// at the simulation horizon (an undetected / unfinished run tells us only
// that the event time exceeds the horizon). Averaging censored-at-horizon
// values biases the mean down; the product-limit estimator handles
// censoring correctly and yields survival curves, median survival, and
// restricted mean survival time — the right summary statistics for E3/E4.
//
// Two estimators share that math:
//  * KaplanMeier        — exact product-limit over a retained sample
//    (step per distinct event time);
//  * StreamingSurvival  — binned product-limit over a fixed grid on
//    [0, horizon], O(bins) memory, with an exact merge (bin counts add),
//    built for the streaming measurement backend where samples are never
//    materialized.
//
// CensoredTimeAccumulator bundles StreamingSurvival with Welford moments
// and a mergeable t-digest of the censored-at-horizon values: the one
// per-indicator aggregation state shared by the campaign measurement
// engine and the SAN first-passage estimators. (The digest replaced the
// paired P² sketches once the accuracy audit showed the P² pooled-CDF
// merge drifts +4–23% under the deep superblock × shard × round merge
// trees; P2Quantile stays available as the single-stream reference —
// see stats/quantile_sketch.h.)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "stats/descriptive.h"
#include "stats/tdigest.h"

namespace divsec::stats {

/// One observation: time of event, or time of censoring.
struct SurvivalObservation {
  double time = 0.0;
  bool event = true;  // false = right-censored at `time`
};

/// A step of the Kaplan-Meier curve: S(t) drops to `survival` at `time`.
struct KaplanMeierStep {
  double time = 0.0;
  double survival = 1.0;
  std::size_t at_risk = 0;
  std::size_t events = 0;
};

class KaplanMeier {
 public:
  /// Builds the product-limit estimate. Observations need not be sorted.
  explicit KaplanMeier(std::vector<SurvivalObservation> observations);

  [[nodiscard]] const std::vector<KaplanMeierStep>& steps() const noexcept {
    return steps_;
  }

  /// S(t): probability the event has not occurred by time t.
  [[nodiscard]] double survival_at(double t) const noexcept;

  /// Smallest event time with S(t) <= 1 - q (e.g. q = 0.5 -> median);
  /// nullopt when the curve never drops that far (heavy censoring).
  [[nodiscard]] std::optional<double> quantile(double q) const;

  /// Median survival time (sugar for quantile(0.5)).
  [[nodiscard]] std::optional<double> median() const { return quantile(0.5); }

  /// Restricted mean survival time: integral of S(t) over [0, tau]
  /// (the standard horizon-limited mean under censoring).
  [[nodiscard]] double restricted_mean(double tau) const;

  [[nodiscard]] std::size_t observation_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t event_count() const noexcept { return events_; }
  [[nodiscard]] std::size_t censored_count() const noexcept { return n_ - events_; }

 private:
  std::vector<KaplanMeierStep> steps_;
  std::size_t n_ = 0;
  std::size_t events_ = 0;
};

/// Streaming product-limit estimator on a fixed binned grid over
/// [0, horizon]. Observations bucket into `bins` equal-width bins (events
/// past the horizon clamp into the last bin; censorings at or past the
/// horizon stay at risk through every bin); the survival curve treats a
/// bin's events as occurring at its upper edge, so estimates converge to
/// Kaplan-Meier as bins grow, with bias bounded by one bin width.
/// merge() adds bin counts — exact and order-independent — which is what
/// makes blocked parallel reduction of survival state deterministic.
class StreamingSurvival {
 public:
  /// The complete internal state, exposed for the distributed-sweep
  /// serialization layer. `censored_in` has bins + 1 entries (index bins
  /// = censored at/past the horizon); both vectors are empty for the
  /// default-constructed mergeable empty state. from_state(state())
  /// restores the estimator exactly.
  struct State {
    double horizon = 0.0;
    std::size_t n = 0;
    std::size_t events = 0;
    std::vector<std::uint64_t> events_in;
    std::vector<std::uint64_t> censored_in;
  };

  /// Mergeable empty state (adopts the first non-empty merge partner).
  StreamingSurvival() = default;
  /// horizon > 0, bins >= 1 (std::invalid_argument otherwise).
  StreamingSurvival(double horizon, std::size_t bins);

  [[nodiscard]] State state() const;
  /// Restores from exported state; validates bin-array shapes and count
  /// consistency (sum of event bins == events, sum of censor bins ==
  /// n - events) and throws std::invalid_argument on corrupt state.
  [[nodiscard]] static StreamingSurvival from_state(const State& s);

  /// Record one observation: `event` false means right-censored at `time`.
  void add(double time, bool event);
  /// Requires identical (horizon, bins) unless one side is empty.
  void merge(const StreamingSurvival& other);

  [[nodiscard]] double horizon() const noexcept { return horizon_; }
  [[nodiscard]] std::size_t bins() const noexcept { return events_in_.size(); }
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] std::size_t event_count() const noexcept { return events_; }
  [[nodiscard]] std::size_t censored_count() const noexcept { return n_ - events_; }

  /// Survival entering each bin of the product-limit curve (size
  /// bins() + 1; front() == 1, back() == the post-horizon plateau).
  /// O(bins) per call: evaluate once and query against it when walking a
  /// time grid.
  [[nodiscard]] std::vector<double> survival_curve() const;

  /// S(t) of the binned product-limit curve (step at bin upper edges).
  /// The one-argument conveniences recompute the curve per call; the
  /// curve-taking overloads query a precomputed survival_curve().
  [[nodiscard]] double survival_at(double t) const;
  [[nodiscard]] double survival_at(double t,
                                   std::span<const double> curve) const noexcept;
  /// Smallest bin upper edge with S <= 1 - q; nullopt when censoring
  /// keeps the curve above that level. q in (0,1).
  [[nodiscard]] std::optional<double> quantile(double q) const;
  [[nodiscard]] std::optional<double> quantile(double q,
                                               std::span<const double> curve) const;
  [[nodiscard]] std::optional<double> median() const { return quantile(0.5); }
  /// Integral of S(t) over [0, horizon] — the censoring-aware mean.
  [[nodiscard]] double restricted_mean() const;
  [[nodiscard]] double restricted_mean(std::span<const double> curve) const noexcept;

 private:
  double horizon_ = 0.0;
  std::size_t n_ = 0;
  std::size_t events_ = 0;
  std::vector<std::uint64_t> events_in_;    // per bin
  std::vector<std::uint64_t> censored_in_;  // per bin, index bins() = at horizon
};

/// Aggregated censoring-aware view of one time indicator.
struct CensoredTimeSummary {
  std::size_t observations = 0;
  std::size_t censored = 0;
  /// Product-limit restricted mean over [0, horizon] — the censoring-aware
  /// replacement for the biased censored-at-horizon mean.
  double restricted_mean = 0.0;
  /// Product-limit median; nullopt when censoring keeps S(t) above 0.5.
  std::optional<double> median;
  /// t-digest quantiles of the censored-at-horizon values (the same
  /// distribution the biased mean summarizes; reported alongside for
  /// context).
  double q50 = 0.0;
  double q90 = 0.0;

  [[nodiscard]] double censor_fraction() const noexcept {
    return observations ? static_cast<double>(censored) /
                              static_cast<double>(observations)
                        : 0.0;
  }
};

/// The streaming aggregation state of one censored time indicator:
/// Welford moments of the censored-at-horizon values, censor count, one
/// t-digest quantile sketch, and the binned product-limit curve. add()
/// is amortized O(1); merge() combines block partials (exact for
/// moments, counts and survival bins; the digest merge is deterministic
/// given a fixed merge order and, unlike the former P² pooled-CDF merge,
/// does not accumulate bias under deep merge trees). Shared by
/// core::IndicatorAccumulator (TTA/TTSF) and the SAN first-passage
/// estimator.
class CensoredTimeAccumulator {
 public:
  /// Compression of the bundled t-digest — one digest serves every
  /// reported quantile (q50, q90, ...), where the P² design needed one
  /// sketch per pinned quantile.
  static constexpr double kSketchCompression = 100.0;

  /// Composite state of the bundled estimators, exposed for the
  /// distributed-sweep serialization layer. from_state(state()) restores
  /// the accumulator exactly.
  struct State {
    OnlineStats::State moments;
    std::size_t censored = 0;
    TDigest::State times;
    StreamingSurvival::State survival;
  };

  CensoredTimeAccumulator() = default;  // mergeable empty state
  CensoredTimeAccumulator(double horizon, std::size_t bins);

  [[nodiscard]] State state() const;
  /// Restores from exported state; validates the constituents (the
  /// digest must use kSketchCompression and count exactly the
  /// observations the moments saw, the censor count cannot exceed the
  /// observation count) and throws std::invalid_argument otherwise.
  [[nodiscard]] static CensoredTimeAccumulator from_state(const State& s);

  /// `time` is the censored-at-horizon value; `censored` true when the
  /// event did not occur by the horizon.
  void add(double time, bool censored);
  void merge(const CensoredTimeAccumulator& other);

  /// Moments of the censored-at-horizon values (the biased estimator —
  /// kept because ANOVA cells and legacy reports are defined on it).
  [[nodiscard]] const OnlineStats& moments() const noexcept { return moments_; }
  [[nodiscard]] std::size_t censored() const noexcept { return censored_; }
  [[nodiscard]] const StreamingSurvival& survival() const noexcept {
    return survival_;
  }
  /// The t-digest of the censored-at-horizon values (any quantile, not
  /// just the q50/q90 the summary reports).
  [[nodiscard]] const TDigest& times() const noexcept { return times_; }
  [[nodiscard]] CensoredTimeSummary summarize() const;

 private:
  OnlineStats moments_;
  std::size_t censored_ = 0;
  TDigest times_{kSketchCompression};
  StreamingSurvival survival_;
};

}  // namespace divsec::stats
