#include "stats/survival.h"

#include <algorithm>
#include <stdexcept>

namespace divsec::stats {

KaplanMeier::KaplanMeier(std::vector<SurvivalObservation> observations) {
  if (observations.empty())
    throw std::invalid_argument("KaplanMeier: empty sample");
  for (const auto& o : observations)
    if (o.time < 0.0) throw std::invalid_argument("KaplanMeier: negative time");
  std::sort(observations.begin(), observations.end(),
            [](const SurvivalObservation& a, const SurvivalObservation& b) {
              if (a.time != b.time) return a.time < b.time;
              // Events before censorings at ties (the usual convention).
              return a.event && !b.event;
            });
  n_ = observations.size();

  double s = 1.0;
  std::size_t at_risk = n_;
  std::size_t i = 0;
  while (i < observations.size()) {
    const double t = observations[i].time;
    std::size_t events_here = 0;
    std::size_t total_here = 0;
    while (i < observations.size() && observations[i].time == t) {
      events_here += observations[i].event ? 1 : 0;
      ++total_here;
      ++i;
    }
    if (events_here > 0) {
      s *= 1.0 - static_cast<double>(events_here) / static_cast<double>(at_risk);
      steps_.push_back(KaplanMeierStep{t, s, at_risk, events_here});
      events_ += events_here;
    }
    at_risk -= total_here;
  }
}

double KaplanMeier::survival_at(double t) const noexcept {
  double s = 1.0;
  for (const auto& step : steps_) {
    if (step.time > t) break;
    s = step.survival;
  }
  return s;
}

std::optional<double> KaplanMeier::quantile(double q) const {
  if (!(q > 0.0 && q < 1.0))
    throw std::invalid_argument("KaplanMeier::quantile: q must be in (0,1)");
  for (const auto& step : steps_)
    if (step.survival <= 1.0 - q) return step.time;
  return std::nullopt;
}

double KaplanMeier::restricted_mean(double tau) const {
  if (!(tau > 0.0))
    throw std::invalid_argument("KaplanMeier::restricted_mean: tau must be > 0");
  double area = 0.0;
  double prev_t = 0.0;
  double prev_s = 1.0;
  for (const auto& step : steps_) {
    if (step.time >= tau) break;
    area += prev_s * (step.time - prev_t);
    prev_t = step.time;
    prev_s = step.survival;
  }
  area += prev_s * (tau - prev_t);
  return area;
}

}  // namespace divsec::stats
