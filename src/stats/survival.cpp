#include "stats/survival.h"

#include <algorithm>
#include <stdexcept>

namespace divsec::stats {

KaplanMeier::KaplanMeier(std::vector<SurvivalObservation> observations) {
  if (observations.empty())
    throw std::invalid_argument("KaplanMeier: empty sample");
  for (const auto& o : observations)
    if (o.time < 0.0) throw std::invalid_argument("KaplanMeier: negative time");
  std::sort(observations.begin(), observations.end(),
            [](const SurvivalObservation& a, const SurvivalObservation& b) {
              if (a.time != b.time) return a.time < b.time;
              // Events before censorings at ties (the usual convention).
              return a.event && !b.event;
            });
  n_ = observations.size();

  double s = 1.0;
  std::size_t at_risk = n_;
  std::size_t i = 0;
  while (i < observations.size()) {
    const double t = observations[i].time;
    std::size_t events_here = 0;
    std::size_t total_here = 0;
    while (i < observations.size() && observations[i].time == t) {
      events_here += observations[i].event ? 1 : 0;
      ++total_here;
      ++i;
    }
    if (events_here > 0) {
      s *= 1.0 - static_cast<double>(events_here) / static_cast<double>(at_risk);
      steps_.push_back(KaplanMeierStep{t, s, at_risk, events_here});
      events_ += events_here;
    }
    at_risk -= total_here;
  }
}

double KaplanMeier::survival_at(double t) const noexcept {
  // steps_ is sorted by time: binary-search the first step past t (this
  // is called per grid point per replication — a linear scan was the
  // hot spot).
  const auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](double value, const KaplanMeierStep& s) { return value < s.time; });
  return it == steps_.begin() ? 1.0 : std::prev(it)->survival;
}

std::optional<double> KaplanMeier::quantile(double q) const {
  if (!(q > 0.0 && q < 1.0))
    throw std::invalid_argument("KaplanMeier::quantile: q must be in (0,1)");
  for (const auto& step : steps_)
    if (step.survival <= 1.0 - q) return step.time;
  return std::nullopt;
}

double KaplanMeier::restricted_mean(double tau) const {
  if (!(tau > 0.0))
    throw std::invalid_argument("KaplanMeier::restricted_mean: tau must be > 0");
  double area = 0.0;
  double prev_t = 0.0;
  double prev_s = 1.0;
  for (const auto& step : steps_) {
    if (step.time >= tau) break;
    area += prev_s * (step.time - prev_t);
    prev_t = step.time;
    prev_s = step.survival;
  }
  area += prev_s * (tau - prev_t);
  return area;
}

StreamingSurvival::StreamingSurvival(double horizon, std::size_t bins)
    : horizon_(horizon) {
  if (!(horizon > 0.0))
    throw std::invalid_argument("StreamingSurvival: horizon must be > 0");
  if (bins == 0)
    throw std::invalid_argument("StreamingSurvival: need >= 1 bin");
  events_in_.assign(bins, 0);
  censored_in_.assign(bins + 1, 0);
}

void StreamingSurvival::add(double time, bool event) {
  if (events_in_.empty())
    throw std::logic_error("StreamingSurvival::add: default-constructed state");
  if (time < 0.0)
    throw std::invalid_argument("StreamingSurvival: negative time");
  ++n_;
  const std::size_t k = std::min(
      bins() - 1,
      static_cast<std::size_t>(time / horizon_ * static_cast<double>(bins())));
  if (event) {
    ++events_;
    ++events_in_[k];
  } else if (time >= horizon_) {
    ++censored_in_[bins()];  // at risk through every bin
  } else {
    ++censored_in_[k];
  }
}

void StreamingSurvival::merge(const StreamingSurvival& other) {
  if (other.n_ == 0 && other.events_in_.empty()) return;
  if (n_ == 0 && events_in_.empty()) {
    *this = other;
    return;
  }
  if (other.horizon_ != horizon_ || other.events_in_.size() != events_in_.size())
    throw std::invalid_argument("StreamingSurvival::merge: grid mismatch");
  n_ += other.n_;
  events_ += other.events_;
  for (std::size_t k = 0; k < events_in_.size(); ++k)
    events_in_[k] += other.events_in_[k];
  for (std::size_t k = 0; k < censored_in_.size(); ++k)
    censored_in_[k] += other.censored_in_[k];
}

std::vector<double> StreamingSurvival::survival_curve() const {
  std::vector<double> s(bins() + 1, 1.0);
  std::uint64_t removed = 0;  // events + censorings in earlier bins
  for (std::size_t k = 0; k < bins(); ++k) {
    const std::uint64_t at_risk = n_ - removed;
    double factor = 1.0;
    if (events_in_[k] > 0 && at_risk > 0)
      factor = 1.0 - static_cast<double>(events_in_[k]) /
                         static_cast<double>(at_risk);
    s[k + 1] = s[k] * factor;
    removed += events_in_[k] + censored_in_[k];
  }
  return s;
}

double StreamingSurvival::survival_at(double t) const {
  return survival_at(t, survival_curve());
}

double StreamingSurvival::survival_at(double t,
                                      std::span<const double> curve) const noexcept {
  if (n_ == 0 || t < 0.0) return 1.0;
  if (t >= horizon_) return curve.back();
  // Bin-k events step the curve at the bin's upper edge, so t inside bin
  // k still sees the value entering the bin.
  const std::size_t k = std::min(
      bins() - 1,
      static_cast<std::size_t>(t / horizon_ * static_cast<double>(bins())));
  return curve[k];
}

std::optional<double> StreamingSurvival::quantile(double q) const {
  return quantile(q, survival_curve());
}

std::optional<double> StreamingSurvival::quantile(
    double q, std::span<const double> curve) const {
  if (!(q > 0.0 && q < 1.0))
    throw std::invalid_argument("StreamingSurvival::quantile: q must be in (0,1)");
  if (n_ == 0) return std::nullopt;
  const double width = horizon_ / static_cast<double>(bins());
  for (std::size_t k = 0; k < bins(); ++k)
    if (curve[k + 1] <= 1.0 - q) return width * static_cast<double>(k + 1);
  return std::nullopt;
}

double StreamingSurvival::restricted_mean() const {
  return restricted_mean(survival_curve());
}

double StreamingSurvival::restricted_mean(
    std::span<const double> curve) const noexcept {
  if (n_ == 0) return 0.0;
  const double width = horizon_ / static_cast<double>(bins());
  double area = 0.0;
  for (std::size_t k = 0; k < bins(); ++k) area += curve[k] * width;
  return area;
}

StreamingSurvival::State StreamingSurvival::state() const {
  return {horizon_, n_, events_, events_in_, censored_in_};
}

StreamingSurvival StreamingSurvival::from_state(const State& s) {
  StreamingSurvival out;
  if (s.events_in.empty()) {
    // The mergeable empty state carries nothing.
    if (s.n != 0 || s.events != 0 || !s.censored_in.empty())
      throw std::invalid_argument(
          "StreamingSurvival::from_state: counts without a bin grid");
    return out;
  }
  if (!(s.horizon > 0.0))
    throw std::invalid_argument(
        "StreamingSurvival::from_state: horizon must be > 0");
  if (s.censored_in.size() != s.events_in.size() + 1)
    throw std::invalid_argument(
        "StreamingSurvival::from_state: censor grid must have bins + 1 entries");
  std::uint64_t events = 0, censored = 0;
  for (const auto e : s.events_in) events += e;
  for (const auto c : s.censored_in) censored += c;
  if (events != s.events || events + censored != s.n)
    throw std::invalid_argument(
        "StreamingSurvival::from_state: bin counts inconsistent with totals");
  out.horizon_ = s.horizon;
  out.n_ = s.n;
  out.events_ = s.events;
  out.events_in_ = s.events_in;
  out.censored_in_ = s.censored_in;
  return out;
}

CensoredTimeAccumulator::CensoredTimeAccumulator(double horizon, std::size_t bins)
    : survival_(horizon, bins) {}

CensoredTimeAccumulator::State CensoredTimeAccumulator::state() const {
  return {moments_.state(), censored_, times_.state(), survival_.state()};
}

CensoredTimeAccumulator CensoredTimeAccumulator::from_state(const State& s) {
  if (s.times.compression != kSketchCompression)
    throw std::invalid_argument(
        "CensoredTimeAccumulator::from_state: sketch compression mismatch");
  if (s.censored > s.moments.n)
    throw std::invalid_argument(
        "CensoredTimeAccumulator::from_state: censored > observations");
  CensoredTimeAccumulator out;
  out.moments_ = OnlineStats::from_state(s.moments);
  out.censored_ = s.censored;
  out.times_ = TDigest::from_state(s.times);
  if (out.times_.count() != s.moments.n)
    throw std::invalid_argument(
        "CensoredTimeAccumulator::from_state: sketch count != observations");
  out.survival_ = StreamingSurvival::from_state(s.survival);
  return out;
}

void CensoredTimeAccumulator::add(double time, bool censored) {
  moments_.add(time);
  if (censored) ++censored_;
  times_.add(time);
  survival_.add(time, /*event=*/!censored);
}

void CensoredTimeAccumulator::merge(const CensoredTimeAccumulator& other) {
  moments_.merge(other.moments_);
  censored_ += other.censored_;
  times_.merge(other.times_);
  survival_.merge(other.survival_);
}

CensoredTimeSummary CensoredTimeAccumulator::summarize() const {
  CensoredTimeSummary s;
  s.observations = moments_.count();
  s.censored = censored_;
  if (s.observations) {
    // One curve evaluation serves both product-limit statistics.
    const std::vector<double> curve = survival_.survival_curve();
    s.restricted_mean = survival_.restricted_mean(curve);
    s.median = survival_.quantile(0.5, curve);
  }
  s.q50 = times_.quantile(0.5);
  s.q90 = times_.quantile(0.9);
  return s;
}

}  // namespace divsec::stats
