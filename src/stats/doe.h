// doe.h — Design of Experiments.
//
// The paper's step 2 uses DoE "to narrow the number of configurations to
// assess". This module provides:
//   * mixed-level full factorial enumeration over a FactorSpace,
//   * 2-level full and fractional factorial designs (with generator words
//     and alias-structure computation),
//   * Plackett-Burman screening designs (Sylvester + Paley Hadamard
//     constructions),
//   * Latin hypercube sampling,
//   * Morris elementary-effects screening designs,
// plus contrast-based effect estimation for 2-level designs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stats/rng.h"

namespace divsec::stats {

/// A categorical experimental factor (e.g. "control-node OS") and its
/// levels (e.g. {"os.win7", "os.linux", "os.rtos"}).
struct Factor {
  std::string name;
  std::vector<std::string> levels;
};

/// The cartesian space of factor-level combinations.
class FactorSpace {
 public:
  FactorSpace() = default;
  explicit FactorSpace(std::vector<Factor> factors);

  [[nodiscard]] std::size_t factor_count() const noexcept { return factors_.size(); }
  [[nodiscard]] const Factor& factor(std::size_t i) const { return factors_.at(i); }
  [[nodiscard]] const std::vector<Factor>& factors() const noexcept { return factors_; }

  /// Total number of level combinations (product of level counts).
  [[nodiscard]] std::size_t configuration_count() const noexcept;

  /// Decode a flat configuration index into per-factor level indices
  /// (mixed-radix, factor 0 fastest).
  [[nodiscard]] std::vector<int> decode(std::size_t flat_index) const;

  /// Inverse of decode().
  [[nodiscard]] std::size_t encode(std::span<const int> levels) const;

 private:
  std::vector<Factor> factors_;
};

/// All configurations of the space, as level-index vectors.
[[nodiscard]] std::vector<std::vector<int>> full_factorial(const FactorSpace& space);

/// A two-level design in coded units: runs x factors matrix of -1/+1.
struct TwoLevelDesign {
  std::vector<std::string> factor_names;
  std::vector<std::vector<int>> runs;  // runs[r][f] in {-1, +1}

  [[nodiscard]] std::size_t run_count() const noexcept { return runs.size(); }
  [[nodiscard]] std::size_t factor_count() const noexcept { return factor_names.size(); }
};

/// Full 2^k design in standard (Yates) order.
[[nodiscard]] TwoLevelDesign full_factorial_2k(std::vector<std::string> factor_names);

/// A generator for a fractional design: `factor = word`, where word is a
/// product of base factors written as capital letters, e.g. {"D", "ABC"}.
struct Generator {
  std::string factor;  // the generated (added) factor
  std::string word;    // product of base factors, e.g. "ABC"
};

/// 2^(k-p) fractional factorial: base factors are assigned letters
/// A, B, C, ... in order; each generator adds one factor whose column is
/// the product of the named base columns.
[[nodiscard]] TwoLevelDesign fractional_factorial(
    std::vector<std::string> base_factor_names, std::span<const Generator> generators);

/// The defining relation and alias structure of a fractional design.
struct AliasStructure {
  /// Words of the defining relation (excluding I), as sorted letter strings.
  std::vector<std::string> defining_relation;
  /// resolution = length of the shortest defining word (0 if full design).
  int resolution = 0;
  /// aliases("A") -> {"BCD", ...}: effects confounded with "A".
  [[nodiscard]] std::vector<std::string> aliases_of(const std::string& word) const;

  std::vector<std::uint32_t> defining_masks;  // internal bitmask form
  std::size_t total_factors = 0;
};
[[nodiscard]] AliasStructure alias_structure(std::size_t base_factors,
                                             std::span<const Generator> generators);

/// Plackett-Burman screening design with the smallest available run count
/// N in {4, 8, 12, 16, 20, 24, 32} such that N > factor count. Columns are
/// mutually orthogonal; main effects are estimable in N runs.
[[nodiscard]] TwoLevelDesign plackett_burman(std::vector<std::string> factor_names);

/// Estimated effect of a word (e.g. "A", "BC") from a 2-level design and
/// its responses: 2/N * sum(sign * y).
[[nodiscard]] double estimate_effect(const TwoLevelDesign& design,
                                     std::span<const double> responses,
                                     const std::string& word);

/// All main effects, in factor order.
[[nodiscard]] std::vector<double> main_effects(const TwoLevelDesign& design,
                                               std::span<const double> responses);

/// Latin hypercube sample: `samples` points in [0,1)^dims, one point per
/// stratum in every dimension.
[[nodiscard]] std::vector<std::vector<double>> latin_hypercube(std::size_t dims,
                                                               std::size_t samples,
                                                               Rng& rng);

/// Morris one-at-a-time screening design.
struct MorrisTrajectory {
  std::vector<std::vector<double>> points;  // k+1 points in [0,1]^k
  std::vector<std::size_t> dim_order;       // dimension changed at step i
  std::vector<double> deltas;               // signed delta applied at step i
};
struct MorrisDesign {
  std::vector<MorrisTrajectory> trajectories;
  double delta = 0.0;
  [[nodiscard]] std::size_t evaluation_count() const noexcept;
};
[[nodiscard]] MorrisDesign morris_design(std::size_t dims, std::size_t trajectories,
                                         Rng& rng, int grid_levels = 4);

/// Morris elementary-effect statistics per dimension.
struct MorrisEffects {
  std::vector<double> mu;       // mean elementary effect
  std::vector<double> mu_star;  // mean |elementary effect| (screening rank)
  std::vector<double> sigma;    // sd of elementary effects (interaction proxy)
};
/// `evaluations` holds f(point) for every trajectory point, concatenated
/// trajectory by trajectory in order.
[[nodiscard]] MorrisEffects morris_effects(const MorrisDesign& design,
                                           std::span<const double> evaluations);

}  // namespace divsec::stats
