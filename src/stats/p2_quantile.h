// p2_quantile.h — the P² (piecewise-parabolic) streaming quantile
// estimator of Jain & Chlamtac, CACM 1985.
//
// Five markers track a running q-quantile in O(1) memory and O(1) work
// per observation — the piece the streaming measurement backend needs to
// report TTA/TTSF quantiles without retaining cells × replications
// samples. merge() combines two sketches by resampling the pooled
// piecewise-linear CDF of their markers; it is a deterministic function
// of the two states, so a blocked reduction that merges partial sketches
// in a fixed block order yields thread-count-independent results. The
// estimate is approximate by construction (like the base algorithm);
// only the determinism, not exactness, is contractual.
#pragma once

#include <array>
#include <cstddef>

namespace divsec::stats {

class P2Quantile {
 public:
  /// The complete marker state, exposed for the distributed-sweep
  /// serialization layer. While count < 5 the sketch still holds raw
  /// observations in `heights` (positions are meaningless); from then on
  /// heights are ascending marker values and pos the 1-based marker
  /// positions. from_state(state()) restores the sketch exactly.
  struct State {
    double q = 0.5;
    std::size_t count = 0;
    std::array<double, 5> heights{};
    std::array<double, 5> pos{};
  };

  /// q in (0, 1): the quantile to track. Throws std::invalid_argument
  /// otherwise.
  explicit P2Quantile(double q = 0.5);

  [[nodiscard]] State state() const noexcept;
  /// Restores a sketch from exported state; validates the structural
  /// invariants (q in (0,1); once the sketch is live, ascending heights
  /// and strictly increasing positions pinned at 1 and count) and throws
  /// std::invalid_argument on corrupt state.
  [[nodiscard]] static P2Quantile from_state(const State& s);

  void add(double x);

  /// Combine another sketch tracking the same q (std::invalid_argument
  /// otherwise). Deterministic in (this state, other state).
  void merge(const P2Quantile& other);

  /// Current estimate; exact (order statistic with linear interpolation)
  /// while fewer than 5 observations have been seen, 0 when empty.
  [[nodiscard]] double value() const;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double probability() const noexcept { return q_; }

 private:
  static constexpr std::size_t kMarkers = 5;

  void init_markers();
  /// Rebuild the marker state from (count, 5 heights at the desired
  /// quantile fractions) — used after a merge.
  void rebuild(std::size_t count, const std::array<double, kMarkers>& heights);
  [[nodiscard]] double desired_fraction(std::size_t i) const noexcept;

  double q_;
  std::size_t count_ = 0;
  std::array<double, kMarkers> heights_{};  // marker values, ascending
  std::array<double, kMarkers> pos_{};      // marker positions (1-based)
};

}  // namespace divsec::stats
