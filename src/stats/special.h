// special.h — special functions backing the statistical tests.
//
// The ANOVA engine needs the F distribution, confidence intervals need
// Student's t, and goodness-of-fit checks need chi-squared. All are
// expressed in terms of the regularized incomplete gamma / beta
// functions, implemented with the classic series + continued-fraction
// split (Numerical Recipes style), accurate to ~1e-12 over the ranges the
// library exercises.
#pragma once

namespace divsec::stats {

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x >= 0.
[[nodiscard]] double reg_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double reg_gamma_q(double a, double x);

/// Regularized incomplete beta I_x(a, b), a, b > 0, x in [0, 1].
[[nodiscard]] double reg_beta(double a, double b, double x);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double z);

/// Standard normal quantile (inverse CDF), p in (0, 1). Acklam's rational
/// approximation refined with one Halley step; |error| < 1e-12.
[[nodiscard]] double normal_quantile(double p);

/// Student's t CDF with nu > 0 degrees of freedom.
[[nodiscard]] double student_t_cdf(double t, double nu);

/// Student's t quantile: smallest t with CDF(t) >= p, p in (0, 1).
[[nodiscard]] double student_t_quantile(double p, double nu);

/// F distribution CDF with (d1, d2) degrees of freedom, x >= 0.
[[nodiscard]] double f_cdf(double x, double d1, double d2);

/// Upper tail of the F distribution: P[F > x]; the ANOVA p-value.
[[nodiscard]] double f_sf(double x, double d1, double d2);

/// Chi-squared CDF with k > 0 degrees of freedom.
[[nodiscard]] double chi2_cdf(double x, double k);

/// Chi-squared upper tail.
[[nodiscard]] double chi2_sf(double x, double k);

}  // namespace divsec::stats
