// distributions.h — value-semantic probability distributions.
//
// Distribution is a small variant-backed value type used throughout the
// SAN engine (activity firing delays), the attack models (stage
// durations), and the SCADA plant (sensor noise). Sampling is implemented
// in-house (inverse transform / polar method) so results are bit-stable
// across standard libraries.
#pragma once

#include <string>
#include <variant>

#include "stats/rng.h"

namespace divsec::stats {

/// Point mass at `value`. value >= 0 is not required (noise offsets may be
/// negative), but activity delays validate non-negativity at model build.
struct Deterministic {
  double value = 0.0;
};

/// Uniform on [lo, hi). Requires lo <= hi.
struct Uniform {
  double lo = 0.0;
  double hi = 1.0;
};

/// Exponential with rate lambda (> 0); mean 1/lambda.
struct Exponential {
  double rate = 1.0;
};

/// Weibull with shape k (> 0) and scale lambda (> 0).
/// shape < 1: infant-mortality hazard; shape > 1: wear-out hazard.
struct Weibull {
  double shape = 1.0;
  double scale = 1.0;
};

/// Lognormal: log of the variate is Normal(mu, sigma^2). sigma >= 0.
struct Lognormal {
  double mu = 0.0;
  double sigma = 1.0;
};

/// Normal(mean, sd). sd >= 0.
struct Normal {
  double mean = 0.0;
  double sd = 1.0;
};

/// Erlang: sum of k (>= 1) independent Exponential(rate) variables.
/// Models multi-phase stage durations (e.g. multi-step exploit chains).
struct Erlang {
  int k = 1;
  double rate = 1.0;
};

/// Triangular on [lo, hi] with mode m, lo <= m <= hi. Handy for expert
/// "min / most-likely / max" duration elicitation, the form used in attack
/// history calibration.
struct Triangular {
  double lo = 0.0;
  double mode = 0.5;
  double hi = 1.0;
};

class Distribution {
 public:
  using Variant = std::variant<Deterministic, Uniform, Exponential, Weibull,
                               Lognormal, Normal, Erlang, Triangular>;

  Distribution() : v_(Deterministic{0.0}) {}
  Distribution(Deterministic d) : v_(d) { validate(); }  // NOLINT(google-explicit-constructor)
  Distribution(Uniform d) : v_(d) { validate(); }        // NOLINT
  Distribution(Exponential d) : v_(d) { validate(); }    // NOLINT
  Distribution(Weibull d) : v_(d) { validate(); }        // NOLINT
  Distribution(Lognormal d) : v_(d) { validate(); }      // NOLINT
  Distribution(Normal d) : v_(d) { validate(); }         // NOLINT
  Distribution(Erlang d) : v_(d) { validate(); }         // NOLINT
  Distribution(Triangular d) : v_(d) { validate(); }     // NOLINT

  /// Draw one sample using `rng`.
  [[nodiscard]] double sample(Rng& rng) const;

  /// Analytic mean of the distribution.
  [[nodiscard]] double mean() const;

  /// Analytic variance of the distribution.
  [[nodiscard]] double variance() const;

  /// Human-readable form, e.g. "Exponential(rate=2)".
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] const Variant& raw() const noexcept { return v_; }

 private:
  void validate() const;
  Variant v_;
};

/// Sample a standard normal via the Marsaglia polar method (no trig, and
/// identical output on every platform). Consumes a variable number of
/// uniforms.
[[nodiscard]] double sample_standard_normal(Rng& rng) noexcept;

}  // namespace divsec::stats
