#include "stats/tdigest.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace divsec::stats {

namespace {
constexpr double kMinCompression = 10.0;
}  // namespace

TDigest::TDigest(double compression) : compression_(compression) {
  if (!(std::isfinite(compression) && compression >= kMinCompression))
    throw std::invalid_argument("TDigest: compression must be >= 10");
}

// k1 scale function (Dunning & Ertl eq. 2): k(q) = δ/(2π)·asin(2q−1).
// Cluster sizes are bounded by one unit of k, which shrinks toward the
// tails — that is what keeps q90 sharp while the median cluster grows.
double TDigest::q_to_k(double q) const noexcept {
  return compression_ * std::asin(2.0 * q - 1.0) /
         (2.0 * std::numbers::pi);
}

double TDigest::k_to_q(double k) const noexcept {
  const double x = 2.0 * std::numbers::pi * k / compression_;
  if (x >= std::numbers::pi / 2.0) return 1.0;
  if (x <= -std::numbers::pi / 2.0) return 0.0;
  return 0.5 * (std::sin(x) + 1.0);
}

void TDigest::add(double x) {
  if (!std::isfinite(x))
    throw std::invalid_argument("TDigest::add: non-finite value");
  if (n_ == 0 || x < min_) min_ = x;
  if (n_ == 0 || x > max_) max_ = x;
  ++n_;
  // Insert after existing centroids with the same mean (stable), so the
  // list stays sorted and insertion is a deterministic function of the
  // state. The list is bounded by 2×compression, so the shift is cheap
  // next to the simulation work that produces each observation.
  const auto it = std::upper_bound(
      centroids_.begin(), centroids_.end(), x,
      [](double value, const Centroid& c) { return value < c.mean; });
  centroids_.insert(it, Centroid{x, 1});
  if (centroids_.size() >
      static_cast<std::size_t>(2.0 * compression_))
    compress();
}

void TDigest::merge(const TDigest& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    if (other.compression_ != compression_)
      throw std::invalid_argument("TDigest::merge: compression mismatch");
    *this = other;
    return;
  }
  if (other.compression_ != compression_)
    throw std::invalid_argument("TDigest::merge: compression mismatch");
  // Concatenate and stable-sort: equal means keep this-before-other
  // order, so the result is a deterministic function of the two states.
  centroids_.insert(centroids_.end(), other.centroids_.begin(),
                    other.centroids_.end());
  std::stable_sort(centroids_.begin(), centroids_.end(),
                   [](const Centroid& a, const Centroid& b) {
                     return a.mean < b.mean;
                   });
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  compress();
}

void TDigest::compress() {
  if (centroids_.size() <= 1) return;
  const double total = static_cast<double>(n_);
  std::vector<Centroid> out;
  out.reserve(centroids_.size());
  double w_done = 0.0;  // weight of fully emitted clusters
  Centroid cur = centroids_.front();
  double q_limit = k_to_q(q_to_k(0.0) + 1.0);
  for (std::size_t i = 1; i < centroids_.size(); ++i) {
    const Centroid& c = centroids_[i];
    const double q_new =
        (w_done + static_cast<double>(cur.weight + c.weight)) / total;
    if (q_new <= q_limit) {
      const std::uint64_t w = cur.weight + c.weight;
      cur.mean += (static_cast<double>(c.weight) / static_cast<double>(w)) *
                  (c.mean - cur.mean);
      cur.weight = w;
    } else {
      w_done += static_cast<double>(cur.weight);
      out.push_back(cur);
      q_limit = k_to_q(q_to_k(w_done / total) + 1.0);
      cur = c;
    }
  }
  out.push_back(cur);
  centroids_ = std::move(out);
}

double TDigest::quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0))
    throw std::invalid_argument("TDigest::quantile: q must be in [0,1]");
  if (n_ == 0) return 0.0;
  if (n_ == 1 || centroids_.size() == 1) {
    if (q <= 0.0) return min_;
    if (q >= 1.0) return max_;
    if (centroids_.size() == 1) return centroids_.front().mean;
  }
  const double index = q * static_cast<double>(n_);
  double cum = 0.0;  // weight strictly before centroid i
  for (std::size_t i = 0; i < centroids_.size(); ++i) {
    const double w = static_cast<double>(centroids_[i].weight);
    const double mid = cum + 0.5 * w;
    if (index < mid) {
      if (i == 0) {
        // Below the first midpoint: interpolate up from the exact min.
        const double t = mid > 0.0 ? index / mid : 0.0;
        return min_ + t * (centroids_[i].mean - min_);
      }
      const double prev_mid =
          cum - 0.5 * static_cast<double>(centroids_[i - 1].weight);
      const double t = (index - prev_mid) / (mid - prev_mid);
      return centroids_[i - 1].mean +
             t * (centroids_[i].mean - centroids_[i - 1].mean);
    }
    cum += w;
  }
  // Past the last midpoint: interpolate toward the exact max.
  const double last_mid =
      static_cast<double>(n_) -
      0.5 * static_cast<double>(centroids_.back().weight);
  const double span = static_cast<double>(n_) - last_mid;
  double t = span > 0.0 ? (index - last_mid) / span : 1.0;
  if (t > 1.0) t = 1.0;
  return centroids_.back().mean + t * (max_ - centroids_.back().mean);
}

TDigest::State TDigest::state() const {
  return {compression_, min_, max_, centroids_};
}

TDigest TDigest::from_state(const State& s) {
  if (!(std::isfinite(s.compression) && s.compression >= kMinCompression))
    throw std::invalid_argument(
        "TDigest::from_state: compression must be >= 10");
  TDigest out(s.compression);
  if (s.centroids.empty()) return out;  // mergeable empty state
  double prev = s.centroids.front().mean;
  std::uint64_t n = 0;
  for (const Centroid& c : s.centroids) {
    if (!std::isfinite(c.mean) || c.mean < prev)
      throw std::invalid_argument(
          "TDigest::from_state: centroid means must be finite and sorted");
    if (c.weight == 0)
      throw std::invalid_argument("TDigest::from_state: zero-weight centroid");
    prev = c.mean;
    n += c.weight;
  }
  if (!(std::isfinite(s.min) && std::isfinite(s.max)) ||
      s.min > s.centroids.front().mean || s.max < s.centroids.back().mean)
    throw std::invalid_argument(
        "TDigest::from_state: min/max must bracket the centroid means");
  out.n_ = n;
  out.min_ = s.min;
  out.max_ = s.max;
  out.centroids_ = s.centroids;
  return out;
}

}  // namespace divsec::stats
