// descriptive.h — descriptive statistics and interval estimation.
//
// OnlineStats (Welford accumulation) is the workhorse used by reward
// variables and replication controllers; Summary adds order statistics;
// confidence intervals use Student's t from special.h.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace divsec::stats {

/// Numerically stable streaming mean/variance accumulator (Welford).
class OnlineStats {
 public:
  /// The complete internal state, exposed for the distributed-sweep
  /// serialization layer (dist/state_codec). from_state(state()) restores
  /// the accumulator exactly — every subsequent add/merge/summary is
  /// bit-identical to the original's.
  struct State {
    std::size_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  OnlineStats() = default;

  [[nodiscard]] State state() const noexcept {
    return {n_, mean_, m2_, min_, max_};
  }

  [[nodiscard]] static OnlineStats from_state(const State& s) noexcept {
    OnlineStats o;
    o.n_ = s.n;
    o.mean_ = s.mean;
    o.m2_ = s.m2;
    o.min_ = s.min;
    o.max_ = s.max;
    return o;
  }

  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  /// Merge another accumulator (parallel Welford / Chan et al.).
  void merge(const OnlineStats& o) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Standard error of the mean; 0 for n < 2.
  [[nodiscard]] double sem() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided t confidence interval for a mean.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double level = 0.95;
  [[nodiscard]] double half_width() const noexcept { return 0.5 * (hi - lo); }
  [[nodiscard]] bool contains(double x) const noexcept { return x >= lo && x <= hi; }
};

/// t-based CI around the accumulated mean; requires count >= 2.
[[nodiscard]] ConfidenceInterval mean_confidence_interval(const OnlineStats& s,
                                                          double level = 0.95);

/// Welch's unequal-variance two-sample t-test (two-sided).
struct WelchTest {
  double t = 0.0;
  double df = 0.0;
  double p_value = 1.0;  // two-sided
  double mean_difference = 0.0;  // mean(a) - mean(b)
};
/// Requires >= 2 samples per side and at least one nonzero variance.
[[nodiscard]] WelchTest welch_t_test(const OnlineStats& a, const OnlineStats& b);

/// Two-proportion z-test (two-sided, pooled standard error) for comparing
/// success counts — e.g. attack success probabilities of two
/// configurations.
struct ProportionTest {
  double z = 0.0;
  double p_value = 1.0;
  double difference = 0.0;  // p_a - p_b
};
[[nodiscard]] ProportionTest two_proportion_z_test(std::size_t successes_a,
                                                   std::size_t n_a,
                                                   std::size_t successes_b,
                                                   std::size_t n_b);

/// Quantile of a sample by linear interpolation between order statistics
/// (type-7 / the numpy default). q in [0,1]; data need not be sorted.
[[nodiscard]] double quantile(std::span<const double> data, double q);

/// Full five-number-style summary of a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};
[[nodiscard]] Summary summarize(std::span<const double> data);

/// Fixed-width histogram over [lo, hi); samples outside are clamped into
/// the edge bins so mass is conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_low(std::size_t i) const noexcept;
  [[nodiscard]] double bin_high(std::size_t i) const noexcept;
  /// Empirical probability mass of bin i.
  [[nodiscard]] double density(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Non-overlapping batch-means estimator for steady-state simulation
/// output (reduces autocorrelation before the t interval is applied).
class BatchMeans {
 public:
  explicit BatchMeans(std::size_t batch_size);
  void add(double x);
  [[nodiscard]] std::size_t completed_batches() const noexcept;
  [[nodiscard]] OnlineStats batch_stats() const noexcept { return batches_; }
  [[nodiscard]] ConfidenceInterval confidence_interval(double level = 0.95) const;

 private:
  std::size_t batch_size_;
  std::size_t in_batch_ = 0;
  double batch_sum_ = 0.0;
  OnlineStats batches_;
};

}  // namespace divsec::stats
