// historian.h — time-series archive, alarm engine, anomaly detection.
//
// The monitoring half of the SCADA system: the historian stores tagged
// samples from the master's polls; the alarm engine raises threshold
// alarms with deadband; the anomaly detector implements the two checks
// that matter against Stuxnet-style spoofing — a stuck-value test (a
// replayed signal has suspiciously low variance) and a rate-of-change
// test (a destabilized plant moves faster than physics should allow).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace divsec::scada {

struct Sample {
  double time_s = 0.0;
  double value = 0.0;
};

/// Ring-buffer archive per tag.
class Historian {
 public:
  explicit Historian(std::size_t capacity_per_tag = 4096);

  void record(const std::string& tag, double time_s, double value);

  [[nodiscard]] std::size_t sample_count(const std::string& tag) const;
  [[nodiscard]] std::optional<Sample> latest(const std::string& tag) const;
  /// Samples with time >= since, oldest first.
  [[nodiscard]] std::vector<Sample> query(const std::string& tag, double since) const;
  [[nodiscard]] std::vector<std::string> tags() const;

  /// Mean/min/max of the samples in [since, +inf); nullopt if empty.
  struct WindowStats {
    std::size_t n = 0;
    double mean = 0.0;
    double variance = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] std::optional<WindowStats> window_stats(const std::string& tag,
                                                        double since) const;

 private:
  struct Series {
    std::string tag;
    std::deque<Sample> samples;
  };
  [[nodiscard]] const Series* find(const std::string& tag) const;
  Series& find_or_create(const std::string& tag);

  std::size_t capacity_;
  std::vector<Series> series_;
};

struct AlarmRule {
  std::string tag;
  double high_limit = 0.0;
  double low_limit = 0.0;
  /// Hysteresis band: an alarm re-arms only after the value returns this
  /// far inside the limit.
  double deadband = 0.5;
};

struct Alarm {
  std::string tag;
  double time_s = 0.0;
  double value = 0.0;
  std::string reason;  // "high", "low", "stuck", "rate-of-change"
};

class AlarmEngine {
 public:
  void add_rule(AlarmRule rule);

  /// Feed one sample; returns the alarms it raised (possibly none).
  std::vector<Alarm> evaluate(const std::string& tag, double time_s, double value);

  [[nodiscard]] const std::vector<Alarm>& alarm_log() const noexcept { return log_; }
  [[nodiscard]] std::optional<double> first_alarm_time() const;

 private:
  struct RuleState {
    AlarmRule rule;
    bool high_active = false;
    bool low_active = false;
  };
  std::vector<RuleState> rules_;
  std::vector<Alarm> log_;
};

/// Spoof-resistant plausibility checks over historian windows.
class AnomalyDetector {
 public:
  struct Options {
    double window_s = 600.0;
    /// A live thermal signal jitters; variance below this over a full
    /// window flags a replay ("stuck" test).
    double min_expected_variance = 1e-4;
    /// Physical bound on |dT/dt| (C per second); faster implies sensor or
    /// data tampering. Must sit well above sensor noise over one poll
    /// interval or it false-positives on healthy plants.
    double max_rate_c_per_s = 0.5;
    std::size_t min_samples = 20;
  };
  AnomalyDetector();  // default options
  explicit AnomalyDetector(Options opts);

  /// Inspect a tag's recent window; returns raised anomalies.
  [[nodiscard]] std::vector<Alarm> inspect(const Historian& historian,
                                           const std::string& tag,
                                           double now_s) const;

 private:
  Options opts_;
};

}  // namespace divsec::scada
