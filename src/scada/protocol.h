// protocol.h — a Modbus-RTU-style register protocol.
//
// Wire format (classic RTU framing with CRC-16/MODBUS):
//   request : [unit id][function][addr hi][addr lo][count/value hi]
//             [count/value lo][crc lo][crc hi]
//   response: [unit id][function][byte count][data...][crc lo][crc hi]
//   error   : [unit id][function | 0x80][exception code][crc lo][crc hi]
// Registers are 16-bit; analog values are fixed-point scaled by 100.
// The SCADA master polls PLC register maps through this layer, so a
// compromised PLC can serve spoofed values to the master while driving
// sabotage outputs — the Stuxnet man-in-the-PLC behaviour.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace divsec::scada {

enum class FunctionCode : std::uint8_t {
  kReadHoldingRegisters = 0x03,
  kWriteSingleRegister = 0x06,
};

enum class ExceptionCode : std::uint8_t {
  kIllegalFunction = 0x01,
  kIllegalAddress = 0x02,
  kIllegalValue = 0x03,
};

struct Request {
  std::uint8_t unit = 1;
  FunctionCode function = FunctionCode::kReadHoldingRegisters;
  std::uint16_t address = 0;
  /// Register count for reads (1..125), value for writes.
  std::uint16_t count_or_value = 1;
};

struct Response {
  std::uint8_t unit = 1;
  FunctionCode function = FunctionCode::kReadHoldingRegisters;
  bool ok = true;
  ExceptionCode exception = ExceptionCode::kIllegalFunction;  // when !ok
  std::vector<std::uint16_t> values;                          // read results
};

/// CRC-16/MODBUS (poly 0xA001 reflected, init 0xFFFF).
[[nodiscard]] std::uint16_t crc16_modbus(const std::uint8_t* data, std::size_t len);

[[nodiscard]] std::vector<std::uint8_t> encode_request(const Request& r);
/// Decode + CRC check; nullopt on malformed frames.
[[nodiscard]] std::optional<Request> decode_request(const std::vector<std::uint8_t>& f);

[[nodiscard]] std::vector<std::uint8_t> encode_response(const Response& r);
[[nodiscard]] std::optional<Response> decode_response(const std::vector<std::uint8_t>& f);

/// Anything exposing a 16-bit register map (a PLC adapter, an RTU...).
class RegisterServer {
 public:
  virtual ~RegisterServer() = default;
  /// Number of registers exposed.
  [[nodiscard]] virtual std::uint16_t register_count() const = 0;
  [[nodiscard]] virtual std::uint16_t read_register(std::uint16_t addr) = 0;
  virtual void write_register(std::uint16_t addr, std::uint16_t value) = 0;
};

/// Serve one decoded request against a register map (bounds-checked).
[[nodiscard]] Response serve(RegisterServer& server, const Request& request);

/// Full round trip through the wire format: encode the request, decode it
/// at the slave, serve, encode the response, decode at the master.
/// Returns nullopt if framing fails at any point (corruption injection is
/// a test hook).
[[nodiscard]] std::optional<Response> transact(RegisterServer& server,
                                               const Request& request);

/// Fixed-point helpers for analog tags (scaled by 100, offset +100 C so
/// negative temperatures fit an unsigned register).
[[nodiscard]] std::uint16_t pack_analog(double value);
[[nodiscard]] double unpack_analog(std::uint16_t reg);

}  // namespace divsec::scada
