// plc.h — programmable logic controller with an IEC 61131-3-style
// instruction-list (IL) runtime.
//
// The PLC executes a scan cycle: latch inputs -> run the IL program (and
// any PID function blocks) -> commit outputs. Registers are doubles;
// boolean logic treats nonzero as true. The Stuxnet-style attack hook is
// load_program(): reprogramming the PLC swaps the control logic while the
// register map (protocol.h) keeps answering reads — optionally with
// replayed pre-attack values (spoofing), which is exactly the behaviour
// the paper highlights ("fooling the SCADA system by emulating regular
// monitoring signals").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace divsec::scada {

inline constexpr std::size_t kPlcInputs = 16;
inline constexpr std::size_t kPlcOutputs = 16;
inline constexpr std::size_t kPlcMemory = 32;

/// Operand spaces of the IL instruction set.
enum class OperandSpace : std::uint8_t {
  kInput,     // %I
  kOutput,    // %Q
  kMemory,    // %M
  kConstant,  // literal
};

enum class IlOp : std::uint8_t {
  kLd,    // acc = operand
  kLdn,   // acc = !operand (boolean)
  kSt,    // operand = acc
  kStn,   // operand = !acc (boolean)
  kAnd,   // acc = acc && operand
  kOr,    // acc = acc || operand
  kAndn,  // acc = acc && !operand
  kOrn,   // acc = acc || !operand
  kAdd,   // acc += operand
  kSub,   // acc -= operand
  kMul,   // acc *= operand
  kDiv,   // acc /= operand (operand 0 -> acc = 0)
  kGt,    // acc = acc > operand
  kLt,    // acc = acc < operand
  kGe,    // acc = acc >= operand
  kLe,    // acc = acc <= operand
};

struct IlInstruction {
  IlOp op = IlOp::kLd;
  OperandSpace space = OperandSpace::kConstant;
  std::uint8_t address = 0;  // index within the operand space
  double constant = 0.0;     // kConstant operand value
};

using IlProgram = std::vector<IlInstruction>;

/// A textbook discrete PID block executed once per scan.
struct PidBlock {
  std::uint8_t input = 0;     // %I index: process variable
  std::uint8_t output = 0;    // %Q index: command
  double setpoint = 0.0;
  double kp = 1.0;
  double ki = 0.0;
  double kd = 0.0;
  double out_min = 0.0;
  double out_max = 1.0;
  /// If true the controller drives the PV *down* toward the setpoint
  /// (cooling): error = pv - setpoint.
  bool reverse_acting = true;
};

class Plc {
 public:
  explicit Plc(std::string name);

  /// Replace the control logic (also the attack hook). Validates operand
  /// addresses; resets PID integrator state.
  void load_program(IlProgram program, std::vector<PidBlock> pids = {});

  /// One scan cycle with `dt_s` since the previous scan (for PID).
  void scan(double dt_s);

  void set_input(std::size_t i, double v);
  [[nodiscard]] double input(std::size_t i) const;
  [[nodiscard]] double output(std::size_t i) const;
  [[nodiscard]] double memory(std::size_t i) const;
  void set_memory(std::size_t i, double v);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t scan_count() const noexcept { return scans_; }
  [[nodiscard]] const IlProgram& program() const noexcept { return program_; }

 private:
  void validate_program(const IlProgram& p, const std::vector<PidBlock>& pids) const;
  [[nodiscard]] double read_operand(const IlInstruction& ins) const;
  void write_operand(const IlInstruction& ins, double v);

  std::string name_;
  IlProgram program_;
  std::vector<PidBlock> pids_;
  std::vector<double> pid_integral_;
  std::vector<double> pid_prev_error_;
  double inputs_[kPlcInputs] = {};
  double outputs_[kPlcOutputs] = {};
  double memory_[kPlcMemory] = {};
  std::uint64_t scans_ = 0;
};

/// Convenience factory: a thermostat program that drives %Q0 on/off from
/// %I0 vs a threshold with hysteresis kept in %M0.
[[nodiscard]] IlProgram make_hysteresis_program(double on_above, double off_below);

}  // namespace divsec::scada
