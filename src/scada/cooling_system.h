// cooling_system.h — the SCoPE data-center cooling SCADA assembly.
//
// Wires the substrate together the way the paper's case study describes:
// a physical cooling plant (plant.h), two PLCs (chiller-loop PID and
// CRAC-fan PID, plc.h) polled by a SCADA master over the Modbus-style
// protocol (protocol.h), a historian, an alarm engine and an anomaly
// detector (historian.h), plus an optional *diverse* redundant sensing
// path through the field sensor gateway.
//
// Attack hooks reproduce the Stuxnet behaviour the paper builds on:
// compromising a PLC swaps its control program for sabotage logic while
// its register map keeps serving monitoring data — truthfully, as a
// constant, or as a replay of pre-attack recordings ("emulating regular
// monitoring signals"). Detection latency of each mode is experiment E9.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scada/historian.h"
#include "scada/plant.h"
#include "scada/plc.h"
#include "scada/protocol.h"
#include "stats/rng.h"

namespace divsec::scada {

/// How a compromised PLC reports its process variable to the master.
enum class SpoofMode {
  kNone,      // serves the real (alarming) values
  kConstant,  // freezes the last pre-attack value
  kReplay,    // cycles recorded pre-attack samples (Stuxnet-style)
};

class CoolingSystem {
 public:
  struct Options {
    PlantParameters plant{};
    double plc_scan_s = 0.5;
    double poll_interval_s = 5.0;
    double anomaly_check_interval_s = 60.0;
    double sensor_noise_sd_c = 0.05;
    double room_setpoint_c = 24.0;
    double water_setpoint_c = 8.0;
    double room_high_alarm_c = 29.0;
    double critical_temp_c = 35.0;
    bool enable_anomaly_detector = true;
    /// Diverse monitoring path: the master cross-checks PLC-reported
    /// temperatures against an independent gateway sensor.
    bool redundant_sensor_path = false;
    double divergence_alarm_c = 2.0;
  };

  CoolingSystem(Options options, std::uint64_t seed);

  /// Advance the whole assembly by `seconds` of simulated time.
  void advance(double seconds);

  // --- Attack hooks -------------------------------------------------------
  /// Replace the CRAC PLC's logic with "fan off" sabotage.
  void compromise_crac_plc(SpoofMode spoof);
  /// Replace the chiller PLC's logic with "valve shut" sabotage.
  void compromise_chiller_plc(SpoofMode spoof);

  // --- Observability --------------------------------------------------------
  [[nodiscard]] double now_s() const noexcept { return time_s_; }
  [[nodiscard]] double room_temp_c() const noexcept { return plant_.room_temp_c(); }
  [[nodiscard]] double water_temp_c() const noexcept { return plant_.water_temp_c(); }
  [[nodiscard]] bool impaired() const noexcept { return impairment_time_.has_value(); }
  [[nodiscard]] std::optional<double> impairment_time_s() const noexcept {
    return impairment_time_;
  }
  /// First operator-visible manifestation (threshold alarm, anomaly, or
  /// divergence alarm) — the TTSF anchor of experiment E9.
  [[nodiscard]] std::optional<double> first_detection_time_s() const noexcept {
    return detection_time_;
  }
  [[nodiscard]] const Historian& historian() const noexcept { return historian_; }
  [[nodiscard]] const AlarmEngine& alarms() const noexcept { return alarm_engine_; }
  [[nodiscard]] const Plc& chiller_plc() const noexcept { return chiller_plc_; }
  [[nodiscard]] const Plc& crac_plc() const noexcept { return crac_plc_; }

 private:
  struct PlcChannel;

  /// Modbus adapter exposing one PLC's register map, with spoofing.
  class PlcRegisterAdapter final : public RegisterServer {
   public:
    explicit PlcRegisterAdapter(PlcChannel& ch) : ch_(ch) {}
    [[nodiscard]] std::uint16_t register_count() const override { return 4; }
    [[nodiscard]] std::uint16_t read_register(std::uint16_t addr) override;
    void write_register(std::uint16_t addr, std::uint16_t value) override;

   private:
    PlcChannel& ch_;
  };

  struct PlcChannel {
    Plc* plc = nullptr;
    std::string tag;           // historian tag of the process variable
    SpoofMode spoof = SpoofMode::kNone;
    bool compromised = false;
    std::vector<double> replay_buffer;  // pre-attack reported values
    std::size_t replay_cursor = 0;
    double frozen_value = 0.0;
    /// Reported process variable (applies the spoof mode).
    [[nodiscard]] double reported_pv();
  };

  void scan_plcs(double dt);
  void poll_master();
  void run_anomaly_checks();
  void note_detection(double t);

  Options opt_;
  stats::Rng rng_;
  CoolingPlant plant_;
  Plc chiller_plc_;
  Plc crac_plc_;
  PlcChannel chiller_channel_;
  PlcChannel crac_channel_;
  Historian historian_;
  AlarmEngine alarm_engine_;
  AnomalyDetector anomaly_;
  double time_s_ = 0.0;
  double since_scan_ = 0.0;
  double since_poll_ = 0.0;
  double since_anomaly_ = 0.0;
  std::optional<double> impairment_time_;
  std::optional<double> detection_time_;
};

}  // namespace divsec::scada
