// plant.h — physical model of a data-center cooling plant.
//
// The paper's case study is "the cooling system of the SCoPE data center
// at the Federico II University of Naples". We stand in a lumped-
// parameter thermal model: an IT room heated by server load and cooled by
// a CRAC unit whose coil exchanges heat with a chilled-water loop driven
// by a chiller. Two control handles exist — CRAC fan speed and chiller
// valve opening — matching the two PLCs of the assembly
// (cooling_system.h). Integration is forward Euler at a fixed substep,
// which is stable for the time constants involved (minutes).
#pragma once

namespace divsec::scada {

struct PlantParameters {
  double room_heat_capacity_kj_per_c = 4000.0;   // air + racks thermal mass
  double water_heat_capacity_kj_per_c = 8000.0;  // loop + tank
  double it_load_kw = 120.0;                     // server heat output
  double ambient_leak_kw_per_c = 0.4;            // envelope gain/loss
  double ambient_temp_c = 28.0;
  double crac_max_exchange_kw_per_c = 9.0;  // coil UA at full fan
  double chiller_capacity_kw = 180.0;
  double chiller_cop_setpoint_c = 7.0;  // supply temperature target floor
  double initial_room_temp_c = 24.0;
  double initial_water_temp_c = 8.0;
  double integration_substep_s = 1.0;

  void validate() const;
};

/// Continuous plant state advanced by step().
class CoolingPlant {
 public:
  explicit CoolingPlant(PlantParameters params = {});

  /// Advance `dt_s` seconds with the given actuator commands.
  /// fan_fraction and valve_fraction are clamped to [0, 1].
  void step(double dt_s, double fan_fraction, double valve_fraction);

  [[nodiscard]] double room_temp_c() const noexcept { return t_room_; }
  [[nodiscard]] double water_temp_c() const noexcept { return t_water_; }
  [[nodiscard]] double time_s() const noexcept { return time_s_; }

  /// Instantaneous heat removed from the room by the CRAC (kW) for the
  /// last step's commands.
  [[nodiscard]] double crac_heat_kw() const noexcept { return last_crac_kw_; }

  [[nodiscard]] const PlantParameters& params() const noexcept { return params_; }

  /// Thermal runaway threshold used as the "device impairment" criterion.
  [[nodiscard]] bool overheated(double critical_temp_c = 35.0) const noexcept {
    return t_room_ >= critical_temp_c;
  }

 private:
  PlantParameters params_;
  double t_room_;
  double t_water_;
  double time_s_ = 0.0;
  double last_crac_kw_ = 0.0;
};

}  // namespace divsec::scada
