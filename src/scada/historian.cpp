#include "scada/historian.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace divsec::scada {

Historian::Historian(std::size_t capacity_per_tag) : capacity_(capacity_per_tag) {
  if (capacity_ == 0) throw std::invalid_argument("Historian: capacity must be > 0");
}

const Historian::Series* Historian::find(const std::string& tag) const {
  for (const auto& s : series_)
    if (s.tag == tag) return &s;
  return nullptr;
}

Historian::Series& Historian::find_or_create(const std::string& tag) {
  for (auto& s : series_)
    if (s.tag == tag) return s;
  series_.push_back(Series{tag, {}});
  return series_.back();
}

void Historian::record(const std::string& tag, double time_s, double value) {
  auto& s = find_or_create(tag);
  if (!s.samples.empty() && time_s < s.samples.back().time_s)
    throw std::invalid_argument("Historian::record: time went backwards for " + tag);
  s.samples.push_back(Sample{time_s, value});
  if (s.samples.size() > capacity_) s.samples.pop_front();
}

std::size_t Historian::sample_count(const std::string& tag) const {
  const Series* s = find(tag);
  return s ? s->samples.size() : 0;
}

std::optional<Sample> Historian::latest(const std::string& tag) const {
  const Series* s = find(tag);
  if (!s || s->samples.empty()) return std::nullopt;
  return s->samples.back();
}

std::vector<Sample> Historian::query(const std::string& tag, double since) const {
  std::vector<Sample> out;
  const Series* s = find(tag);
  if (!s) return out;
  for (const auto& smp : s->samples)
    if (smp.time_s >= since) out.push_back(smp);
  return out;
}

std::vector<std::string> Historian::tags() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& s : series_) out.push_back(s.tag);
  return out;
}

std::optional<Historian::WindowStats> Historian::window_stats(const std::string& tag,
                                                              double since) const {
  const auto samples = query(tag, since);
  if (samples.empty()) return std::nullopt;
  WindowStats w;
  w.n = samples.size();
  w.min = w.max = samples.front().value;
  double mean = 0.0;
  for (const auto& s : samples) {
    mean += s.value;
    w.min = std::min(w.min, s.value);
    w.max = std::max(w.max, s.value);
  }
  mean /= static_cast<double>(w.n);
  double var = 0.0;
  for (const auto& s : samples) var += (s.value - mean) * (s.value - mean);
  w.mean = mean;
  w.variance = w.n > 1 ? var / static_cast<double>(w.n - 1) : 0.0;
  return w;
}

void AlarmEngine::add_rule(AlarmRule rule) {
  if (!(rule.high_limit >= rule.low_limit))
    throw std::invalid_argument("AlarmRule: high_limit < low_limit");
  if (rule.deadband < 0.0) throw std::invalid_argument("AlarmRule: negative deadband");
  rules_.push_back(RuleState{std::move(rule), false, false});
}

std::vector<Alarm> AlarmEngine::evaluate(const std::string& tag, double time_s,
                                         double value) {
  std::vector<Alarm> raised;
  for (auto& rs : rules_) {
    if (rs.rule.tag != tag) continue;
    if (!rs.high_active && value > rs.rule.high_limit) {
      rs.high_active = true;
      raised.push_back(Alarm{tag, time_s, value, "high"});
    } else if (rs.high_active && value < rs.rule.high_limit - rs.rule.deadband) {
      rs.high_active = false;
    }
    if (!rs.low_active && value < rs.rule.low_limit) {
      rs.low_active = true;
      raised.push_back(Alarm{tag, time_s, value, "low"});
    } else if (rs.low_active && value > rs.rule.low_limit + rs.rule.deadband) {
      rs.low_active = false;
    }
  }
  log_.insert(log_.end(), raised.begin(), raised.end());
  return raised;
}

std::optional<double> AlarmEngine::first_alarm_time() const {
  if (log_.empty()) return std::nullopt;
  double t = log_.front().time_s;
  for (const auto& a : log_) t = std::min(t, a.time_s);
  return t;
}

AnomalyDetector::AnomalyDetector() : AnomalyDetector(Options{}) {}

AnomalyDetector::AnomalyDetector(Options opts) : opts_(opts) {
  if (!(opts_.window_s > 0.0))
    throw std::invalid_argument("AnomalyDetector: window must be > 0");
}

std::vector<Alarm> AnomalyDetector::inspect(const Historian& historian,
                                            const std::string& tag,
                                            double now_s) const {
  std::vector<Alarm> out;
  const auto samples = historian.query(tag, now_s - opts_.window_s);
  if (samples.size() < opts_.min_samples) return out;
  // Stuck-value (replay) test.
  double mean = 0.0;
  for (const auto& s : samples) mean += s.value;
  mean /= static_cast<double>(samples.size());
  double var = 0.0;
  for (const auto& s : samples) var += (s.value - mean) * (s.value - mean);
  var /= static_cast<double>(samples.size() - 1);
  if (var < opts_.min_expected_variance)
    out.push_back(Alarm{tag, now_s, samples.back().value, "stuck"});
  // Rate-of-change test over adjacent samples.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double dt = samples[i].time_s - samples[i - 1].time_s;
    if (dt <= 0.0) continue;
    const double rate = std::fabs(samples[i].value - samples[i - 1].value) / dt;
    if (rate > opts_.max_rate_c_per_s) {
      out.push_back(Alarm{tag, samples[i].time_s, samples[i].value, "rate-of-change"});
      break;
    }
  }
  return out;
}

}  // namespace divsec::scada
