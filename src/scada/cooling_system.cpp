#include "scada/cooling_system.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/distributions.h"

namespace divsec::scada {

namespace {
constexpr std::size_t kReplayCapacity = 120;

IlProgram make_sabotage_program() {
  // Drive the actuator hard off regardless of inputs: %Q0 = 0.
  using S = OperandSpace;
  return IlProgram{
      {IlOp::kLd, S::kConstant, 0, 0.0},
      {IlOp::kSt, S::kOutput, 0, 0.0},
  };
}
}  // namespace

double CoolingSystem::PlcChannel::reported_pv() {
  const double real = plc->input(0);
  if (!compromised || spoof == SpoofMode::kNone) return real;
  if (spoof == SpoofMode::kConstant) return frozen_value;
  // Replay: cycle through pre-attack recordings.
  if (replay_buffer.empty()) return frozen_value;
  const double v = replay_buffer[replay_cursor];
  replay_cursor = (replay_cursor + 1) % replay_buffer.size();
  return v;
}

std::uint16_t CoolingSystem::PlcRegisterAdapter::read_register(std::uint16_t addr) {
  switch (addr) {
    case 0: return pack_analog(ch_.reported_pv());
    case 1: {
      // A compromised PLC also lies about its actuator command.
      if (ch_.compromised && ch_.spoof != SpoofMode::kNone)
        return pack_analog(0.5);
      return pack_analog(ch_.plc->output(0));
    }
    case 2: return static_cast<std::uint16_t>(ch_.plc->scan_count() & 0xFFFF);
    case 3: return 0;  // reserved setpoint mirror
  }
  return 0;
}

void CoolingSystem::PlcRegisterAdapter::write_register(std::uint16_t addr,
                                                       std::uint16_t value) {
  // Only the reserved setpoint mirror is writable from the master.
  if (addr == 3) ch_.plc->set_memory(kPlcMemory - 1, unpack_analog(value));
}

CoolingSystem::CoolingSystem(Options options, std::uint64_t seed)
    : opt_(options),
      rng_(seed),
      plant_(options.plant),
      chiller_plc_("plc-chiller"),
      crac_plc_("plc-crac"),
      chiller_channel_{&chiller_plc_, "water_temp", SpoofMode::kNone, false, {}, 0, 0.0},
      crac_channel_{&crac_plc_, "room_temp", SpoofMode::kNone, false, {}, 0, 0.0},
      anomaly_(AnomalyDetector::Options{}) {
  if (!(opt_.plc_scan_s > 0.0) || !(opt_.poll_interval_s > 0.0))
    throw std::invalid_argument("CoolingSystem: scan and poll periods must be > 0");
  // Chiller PLC: PID keeps the water loop at its setpoint via the valve.
  chiller_plc_.load_program({}, {PidBlock{0, 0, opt_.water_setpoint_c, 0.4, 0.01, 0.0,
                                          0.0, 1.0, /*reverse_acting=*/true}});
  // CRAC PLC: PID keeps the room at its setpoint via fan speed.
  crac_plc_.load_program({}, {PidBlock{0, 0, opt_.room_setpoint_c, 0.8, 0.02, 0.0, 0.0,
                                       1.0, /*reverse_acting=*/true}});
  alarm_engine_.add_rule(AlarmRule{"room_temp", opt_.room_high_alarm_c, 10.0, 0.5});
  alarm_engine_.add_rule(AlarmRule{"water_temp", 14.0, 2.0, 0.5});
}

void CoolingSystem::note_detection(double t) {
  if (!detection_time_) detection_time_ = t;
}

void CoolingSystem::scan_plcs(double dt) {
  const stats::Normal noise{0.0, opt_.sensor_noise_sd_c};
  chiller_plc_.set_input(0, plant_.water_temp_c() + stats::Distribution(noise).sample(rng_));
  crac_plc_.set_input(0, plant_.room_temp_c() + stats::Distribution(noise).sample(rng_));
  chiller_plc_.scan(dt);
  crac_plc_.scan(dt);
}

void CoolingSystem::poll_master() {
  for (PlcChannel* ch : {&chiller_channel_, &crac_channel_}) {
    PlcRegisterAdapter adapter(*ch);
    const auto resp = transact(
        adapter, Request{1, FunctionCode::kReadHoldingRegisters, 0, 2});
    if (!resp || !resp->ok || resp->values.size() != 2)
      throw std::logic_error("CoolingSystem: poll transaction failed");
    const double pv = unpack_analog(resp->values[0]);
    historian_.record(ch->tag, time_s_, pv);
    for (const auto& alarm : alarm_engine_.evaluate(ch->tag, time_s_, pv))
      note_detection(alarm.time_s);
    // Maintain the replay buffer while the channel is clean so a later
    // compromise has realistic recordings to serve.
    if (!ch->compromised) {
      if (ch->replay_buffer.size() >= kReplayCapacity)
        ch->replay_buffer.erase(ch->replay_buffer.begin());
      ch->replay_buffer.push_back(pv);
      ch->frozen_value = pv;
    }
    // Diverse sensing path: an independent gateway thermometer.
    if (opt_.redundant_sensor_path) {
      const double real = ch->tag == "room_temp" ? plant_.room_temp_c()
                                                 : plant_.water_temp_c();
      const double gateway =
          real + stats::Distribution(stats::Normal{0.0, opt_.sensor_noise_sd_c})
                     .sample(rng_);
      historian_.record(ch->tag + ".gateway", time_s_, gateway);
      if (std::abs(gateway - pv) > opt_.divergence_alarm_c) {
        alarm_engine_.evaluate(ch->tag, time_s_, pv);  // log context
        note_detection(time_s_);
      }
    }
  }
}

void CoolingSystem::run_anomaly_checks() {
  if (!opt_.enable_anomaly_detector) return;
  for (const auto* tag : {"room_temp", "water_temp"}) {
    const auto anomalies = anomaly_.inspect(historian_, tag, time_s_);
    for (const auto& a : anomalies) note_detection(a.time_s);
  }
}

void CoolingSystem::advance(double seconds) {
  if (seconds < 0.0) throw std::invalid_argument("CoolingSystem::advance: negative dt");
  double remaining = seconds;
  while (remaining > 0.0) {
    const double h = std::min(remaining, opt_.plc_scan_s);
    plant_.step(h, crac_plc_.output(0), chiller_plc_.output(0));
    time_s_ += h;
    since_scan_ += h;
    since_poll_ += h;
    since_anomaly_ += h;
    if (since_scan_ >= opt_.plc_scan_s) {
      scan_plcs(since_scan_);
      since_scan_ = 0.0;
    }
    if (since_poll_ >= opt_.poll_interval_s) {
      poll_master();
      since_poll_ = 0.0;
    }
    if (since_anomaly_ >= opt_.anomaly_check_interval_s) {
      run_anomaly_checks();
      since_anomaly_ = 0.0;
    }
    if (!impairment_time_ && plant_.overheated(opt_.critical_temp_c))
      impairment_time_ = time_s_;
    remaining -= h;
  }
}

void CoolingSystem::compromise_crac_plc(SpoofMode spoof) {
  crac_channel_.compromised = true;
  crac_channel_.spoof = spoof;
  crac_plc_.load_program(make_sabotage_program(), {});
}

void CoolingSystem::compromise_chiller_plc(SpoofMode spoof) {
  chiller_channel_.compromised = true;
  chiller_channel_.spoof = spoof;
  chiller_plc_.load_program(make_sabotage_program(), {});
}

}  // namespace divsec::scada
