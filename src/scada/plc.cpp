#include "scada/plc.h"

#include <algorithm>
#include <stdexcept>

namespace divsec::scada {

Plc::Plc(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw std::invalid_argument("Plc: empty name");
}

void Plc::validate_program(const IlProgram& p, const std::vector<PidBlock>& pids) const {
  for (const auto& ins : p) {
    switch (ins.space) {
      case OperandSpace::kInput:
        if (ins.address >= kPlcInputs) throw std::invalid_argument("IL: %I out of range");
        break;
      case OperandSpace::kOutput:
        if (ins.address >= kPlcOutputs)
          throw std::invalid_argument("IL: %Q out of range");
        break;
      case OperandSpace::kMemory:
        if (ins.address >= kPlcMemory) throw std::invalid_argument("IL: %M out of range");
        break;
      case OperandSpace::kConstant:
        if (ins.op == IlOp::kSt || ins.op == IlOp::kStn)
          throw std::invalid_argument("IL: cannot store to a constant");
        break;
    }
  }
  for (const auto& pid : pids) {
    if (pid.input >= kPlcInputs || pid.output >= kPlcOutputs)
      throw std::invalid_argument("PID: register out of range");
    if (!(pid.out_max > pid.out_min))
      throw std::invalid_argument("PID: out_max must be > out_min");
  }
}

void Plc::load_program(IlProgram program, std::vector<PidBlock> pids) {
  validate_program(program, pids);
  program_ = std::move(program);
  pids_ = std::move(pids);
  pid_integral_.assign(pids_.size(), 0.0);
  pid_prev_error_.assign(pids_.size(), 0.0);
}

double Plc::read_operand(const IlInstruction& ins) const {
  switch (ins.space) {
    case OperandSpace::kInput: return inputs_[ins.address];
    case OperandSpace::kOutput: return outputs_[ins.address];
    case OperandSpace::kMemory: return memory_[ins.address];
    case OperandSpace::kConstant: return ins.constant;
  }
  return 0.0;
}

void Plc::write_operand(const IlInstruction& ins, double v) {
  switch (ins.space) {
    case OperandSpace::kInput: inputs_[ins.address] = v; break;
    case OperandSpace::kOutput: outputs_[ins.address] = v; break;
    case OperandSpace::kMemory: memory_[ins.address] = v; break;
    case OperandSpace::kConstant: break;  // rejected at load time
  }
}

namespace {
[[nodiscard]] bool truthy(double v) noexcept { return v != 0.0; }
}  // namespace

void Plc::scan(double dt_s) {
  if (dt_s < 0.0) throw std::invalid_argument("Plc::scan: negative dt");
  double acc = 0.0;
  for (const auto& ins : program_) {
    const double x = read_operand(ins);
    switch (ins.op) {
      case IlOp::kLd: acc = x; break;
      case IlOp::kLdn: acc = truthy(x) ? 0.0 : 1.0; break;
      case IlOp::kSt: write_operand(ins, acc); break;
      case IlOp::kStn: write_operand(ins, truthy(acc) ? 0.0 : 1.0); break;
      case IlOp::kAnd: acc = (truthy(acc) && truthy(x)) ? 1.0 : 0.0; break;
      case IlOp::kOr: acc = (truthy(acc) || truthy(x)) ? 1.0 : 0.0; break;
      case IlOp::kAndn: acc = (truthy(acc) && !truthy(x)) ? 1.0 : 0.0; break;
      case IlOp::kOrn: acc = (truthy(acc) || !truthy(x)) ? 1.0 : 0.0; break;
      case IlOp::kAdd: acc += x; break;
      case IlOp::kSub: acc -= x; break;
      case IlOp::kMul: acc *= x; break;
      case IlOp::kDiv: acc = (x == 0.0) ? 0.0 : acc / x; break;
      case IlOp::kGt: acc = acc > x ? 1.0 : 0.0; break;
      case IlOp::kLt: acc = acc < x ? 1.0 : 0.0; break;
      case IlOp::kGe: acc = acc >= x ? 1.0 : 0.0; break;
      case IlOp::kLe: acc = acc <= x ? 1.0 : 0.0; break;
    }
  }
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    const PidBlock& pid = pids_[i];
    const double pv = inputs_[pid.input];
    const double error = pid.reverse_acting ? pv - pid.setpoint : pid.setpoint - pv;
    if (dt_s > 0.0) {
      pid_integral_[i] += error * dt_s;
      // Conditional anti-windup: clamp the integral so the P+I term stays
      // representable inside the output range.
      if (pid.ki > 0.0) {
        const double imax = (pid.out_max - pid.out_min) / pid.ki;
        pid_integral_[i] = std::clamp(pid_integral_[i], -imax, imax);
      }
    }
    const double deriv =
        dt_s > 0.0 ? (error - pid_prev_error_[i]) / dt_s : 0.0;
    pid_prev_error_[i] = error;
    const double u = pid.kp * error + pid.ki * pid_integral_[i] + pid.kd * deriv;
    outputs_[pid.output] = std::clamp(u, pid.out_min, pid.out_max);
  }
  ++scans_;
}

void Plc::set_input(std::size_t i, double v) {
  if (i >= kPlcInputs) throw std::out_of_range("Plc::set_input");
  inputs_[i] = v;
}

double Plc::input(std::size_t i) const {
  if (i >= kPlcInputs) throw std::out_of_range("Plc::input");
  return inputs_[i];
}

double Plc::output(std::size_t i) const {
  if (i >= kPlcOutputs) throw std::out_of_range("Plc::output");
  return outputs_[i];
}

double Plc::memory(std::size_t i) const {
  if (i >= kPlcMemory) throw std::out_of_range("Plc::memory");
  return memory_[i];
}

void Plc::set_memory(std::size_t i, double v) {
  if (i >= kPlcMemory) throw std::out_of_range("Plc::set_memory");
  memory_[i] = v;
}

IlProgram make_hysteresis_program(double on_above, double off_below) {
  if (!(on_above >= off_below))
    throw std::invalid_argument("make_hysteresis_program: on_above < off_below");
  using S = OperandSpace;
  // %M0 latches the on/off state:
  //   M0 = (I0 > on_above) OR (M0 AND NOT(I0 < off_below)); Q0 = M0.
  // %M1 is scratch for the "not below the release threshold" term.
  return IlProgram{
      {IlOp::kLd, S::kInput, 0, 0.0},
      {IlOp::kLt, S::kConstant, 0, off_below},  // acc = I0 < off_below
      {IlOp::kStn, S::kMemory, 1, 0.0},         // M1 = !(below)
      {IlOp::kLd, S::kMemory, 0, 0.0},
      {IlOp::kAnd, S::kMemory, 1, 0.0},         // acc = M0 && !below
      {IlOp::kSt, S::kMemory, 0, 0.0},
      {IlOp::kLd, S::kInput, 0, 0.0},
      {IlOp::kGt, S::kConstant, 0, on_above},   // acc = I0 > on_above
      {IlOp::kOr, S::kMemory, 0, 0.0},
      {IlOp::kSt, S::kMemory, 0, 0.0},
      {IlOp::kSt, S::kOutput, 0, 0.0},
  };
}

}  // namespace divsec::scada
