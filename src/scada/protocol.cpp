#include "scada/protocol.h"

#include <algorithm>
#include <cmath>

namespace divsec::scada {

std::uint16_t crc16_modbus(const std::uint8_t* data, std::size_t len) {
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b) {
      if (crc & 1)
        crc = static_cast<std::uint16_t>((crc >> 1) ^ 0xA001);
      else
        crc = static_cast<std::uint16_t>(crc >> 1);
    }
  }
  return crc;
}

namespace {

void append_crc(std::vector<std::uint8_t>& f) {
  const std::uint16_t crc = crc16_modbus(f.data(), f.size());
  f.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  f.push_back(static_cast<std::uint8_t>(crc >> 8));
}

[[nodiscard]] bool crc_ok(const std::vector<std::uint8_t>& f) {
  if (f.size() < 4) return false;
  const std::uint16_t crc = crc16_modbus(f.data(), f.size() - 2);
  return f[f.size() - 2] == (crc & 0xFF) && f[f.size() - 1] == (crc >> 8);
}

}  // namespace

std::vector<std::uint8_t> encode_request(const Request& r) {
  std::vector<std::uint8_t> f;
  f.reserve(8);
  f.push_back(r.unit);
  f.push_back(static_cast<std::uint8_t>(r.function));
  f.push_back(static_cast<std::uint8_t>(r.address >> 8));
  f.push_back(static_cast<std::uint8_t>(r.address & 0xFF));
  f.push_back(static_cast<std::uint8_t>(r.count_or_value >> 8));
  f.push_back(static_cast<std::uint8_t>(r.count_or_value & 0xFF));
  append_crc(f);
  return f;
}

std::optional<Request> decode_request(const std::vector<std::uint8_t>& f) {
  if (f.size() != 8 || !crc_ok(f)) return std::nullopt;
  const auto fn = f[1];
  if (fn != static_cast<std::uint8_t>(FunctionCode::kReadHoldingRegisters) &&
      fn != static_cast<std::uint8_t>(FunctionCode::kWriteSingleRegister))
    return std::nullopt;
  Request r;
  r.unit = f[0];
  r.function = static_cast<FunctionCode>(fn);
  r.address = static_cast<std::uint16_t>((f[2] << 8) | f[3]);
  r.count_or_value = static_cast<std::uint16_t>((f[4] << 8) | f[5]);
  return r;
}

std::vector<std::uint8_t> encode_response(const Response& r) {
  std::vector<std::uint8_t> f;
  f.push_back(r.unit);
  if (!r.ok) {
    f.push_back(static_cast<std::uint8_t>(static_cast<std::uint8_t>(r.function) | 0x80));
    f.push_back(static_cast<std::uint8_t>(r.exception));
  } else {
    f.push_back(static_cast<std::uint8_t>(r.function));
    f.push_back(static_cast<std::uint8_t>(r.values.size() * 2));
    for (std::uint16_t v : r.values) {
      f.push_back(static_cast<std::uint8_t>(v >> 8));
      f.push_back(static_cast<std::uint8_t>(v & 0xFF));
    }
  }
  append_crc(f);
  return f;
}

std::optional<Response> decode_response(const std::vector<std::uint8_t>& f) {
  if (f.size() < 5 || !crc_ok(f)) return std::nullopt;
  Response r;
  r.unit = f[0];
  if (f[1] & 0x80) {
    r.ok = false;
    r.function = static_cast<FunctionCode>(f[1] & 0x7F);
    r.exception = static_cast<ExceptionCode>(f[2]);
    return f.size() == 5 ? std::optional<Response>(r) : std::nullopt;
  }
  r.ok = true;
  r.function = static_cast<FunctionCode>(f[1]);
  const std::size_t nbytes = f[2];
  if (nbytes % 2 != 0 || f.size() != 5 + nbytes) return std::nullopt;
  for (std::size_t i = 0; i < nbytes; i += 2)
    r.values.push_back(static_cast<std::uint16_t>((f[3 + i] << 8) | f[4 + i]));
  return r;
}

Response serve(RegisterServer& server, const Request& request) {
  Response resp;
  resp.unit = request.unit;
  resp.function = request.function;
  switch (request.function) {
    case FunctionCode::kReadHoldingRegisters: {
      if (request.count_or_value == 0 || request.count_or_value > 125) {
        resp.ok = false;
        resp.exception = ExceptionCode::kIllegalValue;
        return resp;
      }
      const std::uint32_t end =
          static_cast<std::uint32_t>(request.address) + request.count_or_value;
      if (end > server.register_count()) {
        resp.ok = false;
        resp.exception = ExceptionCode::kIllegalAddress;
        return resp;
      }
      for (std::uint16_t i = 0; i < request.count_or_value; ++i)
        resp.values.push_back(
            server.read_register(static_cast<std::uint16_t>(request.address + i)));
      return resp;
    }
    case FunctionCode::kWriteSingleRegister: {
      if (request.address >= server.register_count()) {
        resp.ok = false;
        resp.exception = ExceptionCode::kIllegalAddress;
        return resp;
      }
      server.write_register(request.address, request.count_or_value);
      return resp;
    }
  }
  resp.ok = false;
  resp.exception = ExceptionCode::kIllegalFunction;
  return resp;
}

std::optional<Response> transact(RegisterServer& server, const Request& request) {
  const auto wire_req = encode_request(request);
  const auto decoded_req = decode_request(wire_req);
  if (!decoded_req) return std::nullopt;
  const Response resp = serve(server, *decoded_req);
  const auto wire_resp = encode_response(resp);
  return decode_response(wire_resp);
}

std::uint16_t pack_analog(double value) {
  const double scaled = std::round((value + 100.0) * 100.0);
  return static_cast<std::uint16_t>(std::clamp(scaled, 0.0, 65535.0));
}

double unpack_analog(std::uint16_t reg) {
  return static_cast<double>(reg) / 100.0 - 100.0;
}

}  // namespace divsec::scada
