#include "scada/plant.h"

#include <algorithm>
#include <stdexcept>

namespace divsec::scada {

void PlantParameters::validate() const {
  if (!(room_heat_capacity_kj_per_c > 0.0) || !(water_heat_capacity_kj_per_c > 0.0))
    throw std::invalid_argument("PlantParameters: heat capacities must be > 0");
  if (it_load_kw < 0.0) throw std::invalid_argument("PlantParameters: negative IT load");
  if (!(integration_substep_s > 0.0))
    throw std::invalid_argument("PlantParameters: substep must be > 0");
  if (!(crac_max_exchange_kw_per_c >= 0.0) || !(chiller_capacity_kw >= 0.0))
    throw std::invalid_argument("PlantParameters: negative equipment ratings");
}

CoolingPlant::CoolingPlant(PlantParameters params)
    : params_(params),
      t_room_(params.initial_room_temp_c),
      t_water_(params.initial_water_temp_c) {
  params_.validate();
}

void CoolingPlant::step(double dt_s, double fan_fraction, double valve_fraction) {
  if (dt_s < 0.0) throw std::invalid_argument("CoolingPlant::step: negative dt");
  const double fan = std::clamp(fan_fraction, 0.0, 1.0);
  const double valve = std::clamp(valve_fraction, 0.0, 1.0);
  double remaining = dt_s;
  while (remaining > 0.0) {
    const double h = std::min(remaining, params_.integration_substep_s);
    // CRAC coil: air-to-water exchange proportional to fan speed and
    // temperature difference (only cools when the water is colder).
    const double dT = t_room_ - t_water_;
    const double crac_kw =
        dT > 0.0 ? params_.crac_max_exchange_kw_per_c * fan * dT : 0.0;
    // Chiller: extracts heat from the loop toward its setpoint floor.
    const double chiller_kw =
        (t_water_ > params_.chiller_cop_setpoint_c)
            ? params_.chiller_capacity_kw * valve
            : 0.0;
    const double leak_kw =
        params_.ambient_leak_kw_per_c * (params_.ambient_temp_c - t_room_);
    t_room_ += h * (params_.it_load_kw + leak_kw - crac_kw) /
               params_.room_heat_capacity_kj_per_c;
    t_water_ += h * (crac_kw - chiller_kw) / params_.water_heat_capacity_kj_per_c;
    // The loop cannot drop below the chiller's physical floor.
    t_water_ = std::max(t_water_, params_.chiller_cop_setpoint_c - 2.0);
    last_crac_kw_ = crac_kw;
    time_s_ += h;
    remaining -= h;
  }
}

}  // namespace divsec::scada
