// stopping.h — the shared sequential stopping rule.
//
// One place for the Law & Kelton CI half-width criterion so the
// single-experiment controller (sim/replication.cpp) and the adaptive
// sweep drivers (core::MeasurementEngine adaptive mode, dist::run_adaptive)
// apply bit-for-bit the same predicate to the same streaming moments.
//
// Two criteria, either of which stops the run once the minimum is met:
//   relative: half-width <= relative_precision * |mean|
//   absolute: half-width <= absolute_precision
// The relative criterion alone never fires for near-zero-mean indicators
// (e.g. an all-censored TTA cell has mean event-count 0), which is why
// the absolute floor exists; a criterion set to 0 is disabled.
#pragma once

#include <cmath>
#include <cstddef>

#include "stats/descriptive.h"

namespace divsec::sim {

/// Knobs of the sequential procedure. Field names and defaults are the
/// historical SequentialOptions of run_sequential (replication.h aliases
/// that name to this struct).
struct StoppingRule {
  std::size_t min_replications = 10;
  std::size_t max_replications = 10000;
  double confidence_level = 0.95;
  /// Stop when CI half-width <= relative_precision * |mean| (or when the
  /// absolute target is met, whichever first; 0 disables a criterion).
  double relative_precision = 0.05;
  double absolute_precision = 0.0;
};

/// True when the streaming moments meet either precision criterion.
/// Ignores the min/max bounds (see should_stop); false below two samples
/// because no confidence interval exists yet. A zero-variance sequence
/// has half-width 0 and satisfies any enabled criterion immediately.
[[nodiscard]] inline bool precision_reached(const stats::OnlineStats& stats,
                                            const StoppingRule& rule) {
  if (stats.count() < 2) return false;
  const double hw =
      stats::mean_confidence_interval(stats, rule.confidence_level).half_width();
  const bool rel_ok = rule.relative_precision > 0.0 &&
                      hw <= rule.relative_precision * std::fabs(stats.mean());
  const bool abs_ok =
      rule.absolute_precision > 0.0 && hw <= rule.absolute_precision;
  return rel_ok || abs_ok;
}

/// The full rule with its bounds: never stop below min_replications,
/// always stop at max_replications, otherwise stop on precision.
[[nodiscard]] inline bool should_stop(const stats::OnlineStats& stats,
                                      const StoppingRule& rule) {
  if (stats.count() < rule.min_replications) return false;
  if (stats.count() >= rule.max_replications) return true;
  return precision_reached(stats, rule);
}

}  // namespace divsec::sim
