// replication.h — independent-replication experiment controller.
//
// Runs a stochastic experiment N times with independent RNG streams
// derived from a master seed, accumulating OnlineStats and confidence
// intervals. Supports fixed replication counts and sequential runs that
// stop when the CI half-width reaches a relative-precision target (the
// standard Law & Kelton sequential procedure).
//
// Both controllers accept an optional Executor. Replication i always
// draws from the RNG stream derived from (seed, i), so the parallel
// output (samples, statistics, and — for the sequential procedure — the
// stopping point) is bit-identical to the serial one for any thread
// count: parallelism only changes wall-clock time.
#pragma once

#include <functional>
#include <vector>

#include "sim/executor.h"
#include "sim/stopping.h"
#include "stats/descriptive.h"
#include "stats/rng.h"

namespace divsec::sim {

/// One scalar-output stochastic experiment.
using Experiment = std::function<double(stats::Rng&)>;

struct ReplicationResult {
  stats::OnlineStats stats;
  std::vector<double> samples;  // per-replication outputs, in order
  [[nodiscard]] stats::ConfidenceInterval confidence_interval(double level = 0.95) const {
    return stats::mean_confidence_interval(stats, level);
  }
};

/// Run exactly `replications` independent replications. Replication i uses
/// the RNG stream derived from (seed, i) so results are identical no
/// matter how many replications are requested, in which order subsets are
/// re-run, or how many executor threads evaluate them.
[[nodiscard]] ReplicationResult run_replications(const Experiment& experiment,
                                                 std::size_t replications,
                                                 std::uint64_t seed,
                                                 const Executor* executor = nullptr);

/// The sequential knobs are the shared stopping rule (sim/stopping.h);
/// the historical name stays for the single-experiment API.
using SequentialOptions = StoppingRule;

/// Sequential replication until the precision target or max_replications.
/// With an executor the sample sequence grows in parallel batches, but
/// the Law & Kelton stopping rule is still evaluated on the ordered
/// sample sequence after each sample, so the replication count and every
/// retained sample match the serial procedure exactly (surplus samples
/// computed past the stopping point are discarded).
[[nodiscard]] ReplicationResult run_sequential(const Experiment& experiment,
                                               const SequentialOptions& opts,
                                               std::uint64_t seed,
                                               const Executor* executor = nullptr);

}  // namespace divsec::sim
