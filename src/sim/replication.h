// replication.h — independent-replication experiment controller.
//
// Runs a stochastic experiment N times with independent RNG streams
// derived from a master seed, accumulating OnlineStats and confidence
// intervals. Supports fixed replication counts and sequential runs that
// stop when the CI half-width reaches a relative-precision target (the
// standard Law & Kelton sequential procedure).
#pragma once

#include <functional>
#include <vector>

#include "stats/descriptive.h"
#include "stats/rng.h"

namespace divsec::sim {

/// One scalar-output stochastic experiment.
using Experiment = std::function<double(stats::Rng&)>;

struct ReplicationResult {
  stats::OnlineStats stats;
  std::vector<double> samples;  // per-replication outputs, in order
  [[nodiscard]] stats::ConfidenceInterval confidence_interval(double level = 0.95) const {
    return stats::mean_confidence_interval(stats, level);
  }
};

/// Run exactly `replications` independent replications. Replication i uses
/// the RNG stream derived from (seed, i) so results are identical no
/// matter how many replications are requested or in which order subsets
/// are re-run.
[[nodiscard]] ReplicationResult run_replications(const Experiment& experiment,
                                                 std::size_t replications,
                                                 std::uint64_t seed);

struct SequentialOptions {
  std::size_t min_replications = 10;
  std::size_t max_replications = 10000;
  double confidence_level = 0.95;
  /// Stop when CI half-width <= relative_precision * |mean| (or when the
  /// absolute target is met, whichever first; 0 disables a criterion).
  double relative_precision = 0.05;
  double absolute_precision = 0.0;
};

/// Sequential replication until the precision target or max_replications.
[[nodiscard]] ReplicationResult run_sequential(const Experiment& experiment,
                                               const SequentialOptions& opts,
                                               std::uint64_t seed);

}  // namespace divsec::sim
