#include "sim/replication.h"

#include <algorithm>
#include <stdexcept>

namespace divsec::sim {

namespace {

/// Evaluate replications [begin, end) into contiguous slots of `samples`
/// (which must already span the range). Each replication draws from the
/// (seed, index) stream regardless of which thread runs it.
void fill_samples(const Experiment& experiment, std::uint64_t seed,
                  std::size_t begin, std::size_t end, std::vector<double>& samples,
                  const Executor* executor) {
  for_each_index(executor, begin, end, [&experiment, seed, &samples](std::size_t i) {
    stats::Rng rng(seed, /*stream=*/i);
    samples[i] = experiment(rng);
  });
}

}  // namespace

ReplicationResult run_replications(const Experiment& experiment,
                                   std::size_t replications, std::uint64_t seed,
                                   const Executor* executor) {
  if (!experiment) throw std::invalid_argument("run_replications: empty experiment");
  if (replications == 0)
    throw std::invalid_argument("run_replications: need >= 1 replication");
  ReplicationResult r;
  r.samples.resize(replications);
  fill_samples(experiment, seed, 0, replications, r.samples, executor);
  // Accumulate in replication order: Welford folds are order-sensitive,
  // and a fixed order keeps the statistics bit-identical to a serial run.
  for (double y : r.samples) r.stats.add(y);
  return r;
}

ReplicationResult run_sequential(const Experiment& experiment,
                                 const SequentialOptions& opts, std::uint64_t seed,
                                 const Executor* executor) {
  if (!experiment) throw std::invalid_argument("run_sequential: empty experiment");
  if (opts.min_replications < 2)
    throw std::invalid_argument("run_sequential: min_replications must be >= 2");
  if (opts.max_replications < opts.min_replications)
    throw std::invalid_argument("run_sequential: max < min replications");

  const std::size_t threads =
      executor ? std::max<std::size_t>(executor->thread_count(), 1) : 1;

  ReplicationResult r;
  std::vector<double> batch;  // grows to cover [0, computed)
  std::size_t computed = 0;   // samples evaluated so far
  std::size_t folded = 0;     // samples accepted into r, in order
  while (folded < opts.max_replications) {
    // Next batch: reach min_replications first, then grow by one chunk
    // per thread so parallel hardware stays busy without overshooting the
    // stopping point by much. Surplus samples are simply discarded.
    std::size_t target = computed < opts.min_replications
                             ? opts.min_replications
                             : computed + threads;
    target = std::min(target, opts.max_replications);
    if (target == computed) break;  // max reached
    batch.resize(target);
    fill_samples(experiment, seed, computed, target, batch, executor);
    computed = target;

    // Fold the new samples in index order, applying the stopping rule
    // after each one — exactly the serial procedure.
    while (folded < computed) {
      const double y = batch[folded];
      r.stats.add(y);
      r.samples.push_back(y);
      ++folded;
      if (folded < opts.min_replications) continue;
      if (precision_reached(r.stats, opts)) return r;
    }
  }
  return r;
}

}  // namespace divsec::sim
