#include "sim/replication.h"

#include <cmath>
#include <stdexcept>

namespace divsec::sim {

ReplicationResult run_replications(const Experiment& experiment,
                                   std::size_t replications, std::uint64_t seed) {
  if (!experiment) throw std::invalid_argument("run_replications: empty experiment");
  if (replications == 0)
    throw std::invalid_argument("run_replications: need >= 1 replication");
  ReplicationResult r;
  r.samples.reserve(replications);
  for (std::size_t i = 0; i < replications; ++i) {
    stats::Rng rng(seed, /*stream=*/i);
    const double y = experiment(rng);
    r.stats.add(y);
    r.samples.push_back(y);
  }
  return r;
}

ReplicationResult run_sequential(const Experiment& experiment,
                                 const SequentialOptions& opts, std::uint64_t seed) {
  if (!experiment) throw std::invalid_argument("run_sequential: empty experiment");
  if (opts.min_replications < 2)
    throw std::invalid_argument("run_sequential: min_replications must be >= 2");
  if (opts.max_replications < opts.min_replications)
    throw std::invalid_argument("run_sequential: max < min replications");
  ReplicationResult r;
  for (std::size_t i = 0; i < opts.max_replications; ++i) {
    stats::Rng rng(seed, /*stream=*/i);
    const double y = experiment(rng);
    r.stats.add(y);
    r.samples.push_back(y);
    if (i + 1 < opts.min_replications) continue;
    const auto ci = r.confidence_interval(opts.confidence_level);
    const double hw = ci.half_width();
    const bool rel_ok = opts.relative_precision > 0.0 &&
                        hw <= opts.relative_precision * std::fabs(r.stats.mean());
    const bool abs_ok = opts.absolute_precision > 0.0 && hw <= opts.absolute_precision;
    if (rel_ok || abs_ok) break;
  }
  return r;
}

}  // namespace divsec::sim
