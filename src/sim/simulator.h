// simulator.h — minimal deterministic discrete-event simulation kernel.
//
// Shared by the SAN solver (san/), the network propagation model (net/)
// and the SCADA plant (scada/). Events at equal timestamps are ordered by
// (priority, insertion sequence) so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace divsec::sim {

using Time = double;

/// Handle for a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

class Simulator {
 public:
  using EventFn = std::function<void()>;

  /// Schedule `fn` at absolute time `at` (must be >= now()). Lower
  /// `priority` fires first among equal timestamps.
  EventId schedule(Time at, EventFn fn, int priority = 0);

  /// Schedule `fn` after a relative delay (must be >= 0).
  EventId schedule_in(Time delay, EventFn fn, int priority = 0);

  /// Cancel a pending event. Returns false if it already fired or was
  /// previously cancelled.
  bool cancel(EventId id);

  /// Execute the next event; returns false when the queue is empty or the
  /// simulator was stopped.
  bool step();

  /// Run until the queue drains, `stop()` is called, or the clock would
  /// pass `t_end` (events at exactly t_end fire). Returns the number of
  /// events executed.
  std::size_t run_until(Time t_end);

  /// Run until the queue drains or stop() is called.
  std::size_t run();

  /// Request the run loop to exit after the current event.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }
  [[nodiscard]] std::size_t pending() const noexcept { return handlers_.size(); }

  /// Reset clock and queue; handlers are dropped.
  void reset();

 private:
  struct Entry {
    Time at;
    int priority;
    std::uint64_t seq;
    EventId id;
    bool operator>(const Entry& o) const noexcept {
      if (at != o.at) return at > o.at;
      if (priority != o.priority) return priority > o.priority;
      return seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<EventId, EventFn> handlers_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  bool stopped_ = false;
};

}  // namespace divsec::sim
