// streaming.h — deterministic blocked map-reduce on an Executor.
//
// The streaming measurement backends reduce (group × index-range)
// workloads into one accumulator per group without materializing
// per-index samples. The index range of every group is split into
// fixed-size blocks; each block folds locally into a fresh accumulator,
// and the block accumulators merge into the group result in ascending
// block order. Two contracts make this bit-identical for any thread
// count:
//  * the block size must not depend on the thread count (it is part of
//    the caller's determinism contract, like the RNG stream derivation);
//  * merges happen only on the calling thread, in ascending block order.
// Scheduling runs in rounds of O(threads) block jobs, so at most
// O(groups + threads) accumulators are alive at once — memory is
// O(groups + threads × block-state), never O(groups × count).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <vector>

#include "obs/metrics.h"
#include "sim/executor.h"

namespace divsec::sim {

namespace streaming_detail {
/// Fold telemetry. The queued path already reads the clock per group for
/// the dist:: cost model; the histogram reuses those numbers so the
/// CostModel and the obs catalog can never disagree about fold cost.
inline obs::Counter& blocks_counter() {
  static obs::Counter& c = obs::counter("sim.streaming.blocks");
  return c;
}
inline obs::Counter& groups_counter() {
  static obs::Counter& c = obs::counter("sim.streaming.groups");
  return c;
}
inline obs::Histogram& group_fold_hist() {
  static obs::Histogram& h = obs::histogram("sim.streaming.group_fold_ns");
  return h;
}
}  // namespace streaming_detail

/// Default replications-per-block of the streaming backends. Small enough
/// that round memory stays trivial, large enough that per-block overhead
/// (accumulator construction, merge) vanishes against the simulation work.
inline constexpr std::size_t kDefaultReductionBlock = 256;

/// How many block jobs are in flight between ordered merges. Any value
/// yields identical results (merges stay in ascending block order); more
/// in-flight jobs just keeps wide executors busy.
[[nodiscard]] inline std::size_t blocked_round_size(const Executor& executor) {
  return std::max<std::size_t>(1, executor.thread_count() * 4);
}

/// Reduce indices [0, count) of each of `groups` groups into one
/// accumulator per group. make(g) builds an empty accumulator for group
/// g; fold(acc, g, i) folds index i of group g into acc; Acc::merge(const
/// Acc&) combines block partials.
template <typename Acc, typename Make, typename Fold>
[[nodiscard]] std::vector<Acc> blocked_reduce_groups(const Executor& executor,
                                                     std::size_t groups,
                                                     std::size_t count,
                                                     std::size_t block,
                                                     const Make& make,
                                                     const Fold& fold) {
  if (block == 0) block = kDefaultReductionBlock;
  const std::size_t nblocks = count == 0 ? 0 : (count + block - 1) / block;

  std::vector<Acc> out;
  out.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) out.push_back(make(g));

  const std::size_t jobs = groups * nblocks;
  if (jobs == 0) return out;

  streaming_detail::blocks_counter().add(jobs);
  const std::size_t round = blocked_round_size(executor);
  std::vector<Acc> partials;
  for (std::size_t start = 0; start < jobs; start += round) {
    const std::size_t n = std::min(round, jobs - start);
    partials.clear();
    partials.reserve(n);
    for (std::size_t j = 0; j < n; ++j)
      partials.push_back(make((start + j) / nblocks));
    executor.parallel_for(0, n, [&](std::size_t j) {
      const std::size_t job = start + j;
      const std::size_t g = job / nblocks;
      const std::size_t b = job % nblocks;
      const std::size_t lo = b * block;
      const std::size_t hi = std::min(count, lo + block);
      for (std::size_t i = lo; i < hi; ++i) fold(partials[j], g, i);
    });
    // Ascending job order is ascending block order within each group: the
    // reduction sequence is independent of the thread count and of the
    // round size.
    for (std::size_t j = 0; j < n; ++j)
      out[(start + j) / nblocks].merge(partials[j]);
  }
  return out;
}

/// Elastic sibling of blocked_reduce_groups: the same (group × block)
/// reduction, scheduled through a shared atomic work queue instead of
/// static chunking. Whole groups are the queue items — a thread pulls the
/// next unclaimed group when it finishes its current one, folds every
/// block of that group locally (fresh block accumulator, merged in
/// ascending block order), and moves on. Because each group's fold is the
/// exact block sequence blocked_reduce_groups performs and no partial
/// ever crosses a thread, the returned accumulators are bit-identical to
/// the static schedule for any thread count and any pull order; only the
/// assignment of groups to threads is dynamic. Use it when group costs
/// are skewed (a static chunk of expensive groups idles the other
/// threads); use blocked_reduce_groups when there are fewer groups than
/// threads (the queue cannot feed the pool, the round schedule can).
///
/// group_seconds, when non-null, receives each group's fold wall time in
/// seconds (resized to `groups`) — single-writer per slot, measured on
/// the thread that owned the group. This is the measurement feed of the
/// dist:: cost model.
template <typename Acc, typename Make, typename Fold>
[[nodiscard]] std::vector<Acc> queued_reduce_groups(
    const Executor& executor, std::size_t groups, std::size_t count,
    std::size_t block, const Make& make, const Fold& fold,
    std::vector<double>* group_seconds = nullptr) {
  if (block == 0) block = kDefaultReductionBlock;
  const std::size_t nblocks = count == 0 ? 0 : (count + block - 1) / block;

  std::vector<Acc> out;
  out.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) out.push_back(make(g));
  if (group_seconds) group_seconds->assign(groups, 0.0);
  if (groups == 0 || nblocks == 0) return out;

  std::atomic<std::size_t> next{0};
  const std::size_t workers = std::min(executor.thread_count(), groups);
  executor.parallel_for(0, workers, [&](std::size_t) {
    for (std::size_t g = next.fetch_add(1, std::memory_order_relaxed);
         g < groups; g = next.fetch_add(1, std::memory_order_relaxed)) {
      const auto start = std::chrono::steady_clock::now();
      Acc& acc = out[g];
      for (std::size_t b = 0; b < nblocks; ++b) {
        Acc partial = make(g);
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(count, lo + block);
        for (std::size_t i = lo; i < hi; ++i) fold(partial, g, i);
        acc.merge(partial);
      }
      const auto fold_time = std::chrono::steady_clock::now() - start;
      streaming_detail::groups_counter().add(1);
      streaming_detail::group_fold_hist().observe(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(fold_time)
              .count()));
      if (group_seconds)
        (*group_seconds)[g] =
            std::chrono::duration<double>(fold_time).count();
    }
  });
  return out;
}

/// Single-group convenience: reduce [0, count) into one accumulator.
/// fold(acc, i) folds index i. A null executor runs the identical block
/// schedule serially (same merge sequence, same results).
template <typename Acc, typename Make, typename Fold>
[[nodiscard]] Acc blocked_reduce(const Executor* executor, std::size_t count,
                                 std::size_t block, const Make& make,
                                 const Fold& fold) {
  static const Executor serial{1};
  const Executor& ex = executor ? *executor : serial;
  auto out = blocked_reduce_groups<Acc>(
      ex, 1, count, block, [&make](std::size_t) { return make(); },
      [&fold](Acc& acc, std::size_t, std::size_t i) { fold(acc, i); });
  return std::move(out.front());
}

}  // namespace divsec::sim
