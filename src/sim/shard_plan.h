// shard_plan.h — deterministic superblock partition of a (group × index)
// reduction space, the planning layer of the distributed sweep subsystem.
//
// The streaming backends reduce each group's index range through
// fixed-size blocks merged in ascending order (sim/streaming.h). That
// left-fold is deterministic but not decomposable: floating-point merges
// (parallel Welford, the P² pooled-CDF resample) are not associative, so
// a partial computed over an arbitrary block range cannot be combined
// with another partial bit-identically to the single left-fold.
//
// The superblock is the decomposition contract that fixes this. Each
// group's index range splits into fixed-size superblocks (a multiple of
// the block size; like the block size, NEVER derived from the thread or
// shard count). The reduction is defined two-level:
//   superblock partial = empty ⊕ (its block partials, ascending);
//   group result       = superblock partial 0 ⊕ partial 1 ⊕ … (ascending).
// A superblock partial depends only on (group, superblock index, the RNG
// stream contract) — not on which process computes it or with how many
// threads — so any assignment of whole superblocks to K OS processes,
// followed by a merge in ascending (group, superblock) order, reproduces
// the in-process result bit for bit. In-process execution is simply the
// K = 1 instance of the same plan, one code path for threads and
// processes alike. When a group's whole range fits one superblock the
// two-level fold degenerates to the original single-level fold, so small
// runs are bit-identical to the pre-superblock streaming backend too.
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/streaming.h"

namespace divsec::sim {

/// Default indices per superblock. Part of the determinism contract the
/// same way kDefaultReductionBlock is: changing it changes where shard
/// partial boundaries fall (and hence merge-order floating point), so it
/// is recorded in serialized shard state and validated at merge time.
inline constexpr std::size_t kDefaultSuperblockReps = 16384;

class ShardPlan {
 public:
  /// One unit of distributable work: indices [begin, end) of `group`,
  /// reduced into a single accumulator partial.
  struct Task {
    std::size_t group = 0;
    std::size_t superblock = 0;  // index within the group
    std::size_t begin = 0;       // index range within the group
    std::size_t end = 0;
  };

  ShardPlan() = default;

  /// Plan the (groups × count) space. block == 0 resolves to
  /// kDefaultReductionBlock; superblock == 0 resolves to
  /// kDefaultSuperblockReps rounded up to a block multiple. An explicit
  /// superblock must be a nonzero multiple of the block
  /// (std::invalid_argument otherwise) — a misaligned superblock would
  /// split a block across shards and change the fold sequence.
  [[nodiscard]] static ShardPlan make(std::size_t groups, std::size_t count,
                                      std::size_t block,
                                      std::size_t superblock) {
    ShardPlan p;
    p.groups_ = groups;
    p.count_ = count;
    p.block_ = block ? block : kDefaultReductionBlock;
    std::size_t sb = superblock;
    if (sb == 0)
      sb = ((kDefaultSuperblockReps + p.block_ - 1) / p.block_) * p.block_;
    if (sb < p.block_ || sb % p.block_ != 0)
      throw std::invalid_argument(
          "ShardPlan: superblock must be a nonzero multiple of the block");
    p.superblock_ = sb;
    p.per_group_ = count == 0 ? 0 : (count + sb - 1) / sb;
    return p;
  }

  [[nodiscard]] std::size_t groups() const noexcept { return groups_; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] std::size_t block() const noexcept { return block_; }
  [[nodiscard]] std::size_t superblock() const noexcept { return superblock_; }
  [[nodiscard]] std::size_t superblocks_per_group() const noexcept {
    return per_group_;
  }
  [[nodiscard]] std::size_t task_count() const noexcept {
    return groups_ * per_group_;
  }

  /// The uniform per-task iteration span handed to the blocked reduction:
  /// full superblocks normally, shrunk to the block-aligned range when
  /// every group fits one superblock so short runs schedule no empty
  /// block jobs. Tasks bound-check against their own [begin, end).
  [[nodiscard]] std::size_t task_span() const noexcept {
    if (per_group_ <= 1)
      return count_ == 0 ? 0 : ((count_ + block_ - 1) / block_) * block_;
    return superblock_;
  }

  /// Task t in canonical order: t = group * superblocks_per_group() +
  /// superblock. Ascending task order within a group is ascending index
  /// order — the merge sequence of the reducer.
  [[nodiscard]] Task task(std::size_t t) const {
    if (t >= task_count()) throw std::out_of_range("ShardPlan::task");
    Task out;
    out.group = t / per_group_;
    out.superblock = t % per_group_;
    out.begin = out.superblock * superblock_;
    out.end = std::min(count_, out.begin + superblock_);
    return out;
  }

  /// Contiguous balanced assignment of tasks to `shard_count` shards:
  /// shard i owns tasks [i·T/K, (i+1)·T/K). Deterministic in (plan,
  /// shard_count) only; shards past the task count are empty and valid.
  [[nodiscard]] std::pair<std::size_t, std::size_t> shard_range(
      std::size_t shard, std::size_t shard_count) const {
    if (shard_count == 0 || shard >= shard_count)
      throw std::invalid_argument("ShardPlan::shard_range: need shard < K");
    const std::size_t t = task_count();
    return {t * shard / shard_count, t * (shard + 1) / shard_count};
  }

 private:
  std::size_t groups_ = 0;
  std::size_t count_ = 0;
  std::size_t block_ = kDefaultReductionBlock;
  std::size_t superblock_ = kDefaultSuperblockReps;
  std::size_t per_group_ = 0;
};

/// The exact reducer: combine the complete task-partial list (canonical
/// task order, e.g. concatenated from shard states sorted by task index)
/// into one accumulator per group. Group g's result is its first
/// superblock partial left-merged with the rest in ascending superblock
/// order — the same sequence for one process or many, any thread count.
/// make(g) supplies the empty accumulator only for groups with no tasks
/// (count == 0).
template <typename Acc, typename Make>
[[nodiscard]] std::vector<Acc> reduce_task_partials(const ShardPlan& plan,
                                                    std::vector<Acc> partials,
                                                    const Make& make) {
  if (partials.size() != plan.task_count())
    throw std::invalid_argument(
        "reduce_task_partials: partial count != task count");
  const std::size_t per_group = plan.superblocks_per_group();
  std::vector<Acc> out;
  out.reserve(plan.groups());
  for (std::size_t g = 0; g < plan.groups(); ++g) {
    if (per_group == 0) {
      out.push_back(make(g));
      continue;
    }
    Acc acc = std::move(partials[g * per_group]);
    for (std::size_t s = 1; s < per_group; ++s)
      acc.merge(partials[g * per_group + s]);
    out.push_back(std::move(acc));
  }
  return out;
}

}  // namespace divsec::sim
