#include "sim/simulator.h"

#include <stdexcept>

namespace divsec::sim {

EventId Simulator::schedule(Time at, EventFn fn, int priority) {
  if (at < now_) throw std::invalid_argument("Simulator::schedule: time in the past");
  if (!fn) throw std::invalid_argument("Simulator::schedule: empty handler");
  const EventId id = next_id_++;
  queue_.push(Entry{at, priority, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::schedule_in(Time delay, EventFn fn, int priority) {
  if (delay < 0.0) throw std::invalid_argument("Simulator::schedule_in: negative delay");
  return schedule(now_ + delay, std::move(fn), priority);
}

bool Simulator::cancel(EventId id) { return handlers_.erase(id) > 0; }

bool Simulator::step() {
  if (stopped_) return false;
  while (!queue_.empty()) {
    const Entry e = queue_.top();
    queue_.pop();
    auto it = handlers_.find(e.id);
    if (it == handlers_.end()) continue;  // cancelled; skip tombstone
    EventFn fn = std::move(it->second);
    handlers_.erase(it);
    now_ = e.at;
    fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(Time t_end) {
  std::size_t executed = 0;
  while (!stopped_ && !queue_.empty()) {
    // Peek through tombstones to find the next live event time.
    while (!queue_.empty() && !handlers_.contains(queue_.top().id)) queue_.pop();
    if (queue_.empty()) break;
    if (queue_.top().at > t_end) break;
    if (step()) ++executed;
  }
  if (now_ < t_end && !stopped_) now_ = t_end;
  return executed;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (!stopped_ && step()) ++executed;
  return executed;
}

void Simulator::reset() {
  queue_ = {};
  handlers_.clear();
  now_ = 0.0;
  next_seq_ = 0;
  next_id_ = 1;
  stopped_ = false;
}

}  // namespace divsec::sim
