#include "sim/executor.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace divsec::sim {

namespace {

/// Pool telemetry (serial/reentrant fallbacks are deliberately not
/// counted — they are the absence of pool work). Handles are resolved
/// once; every hot-path touch is a relaxed striped add.
obs::Counter& jobs_counter() {
  static obs::Counter& c = obs::counter("sim.executor.jobs");
  return c;
}
obs::Counter& chunks_counter() {
  static obs::Counter& c = obs::counter("sim.executor.chunks");
  return c;
}
obs::Counter& idle_counter() {
  static obs::Counter& c = obs::counter("sim.executor.idle_ns");
  return c;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::gauge("sim.executor.queue_depth_max");
  return g;
}
obs::Histogram& chunk_latency_hist() {
  static obs::Histogram& h = obs::histogram("sim.executor.chunk_ns");
  return h;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// One parallel_for invocation shared between the caller and the workers.
struct ForJob {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunks = 0;

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t chunks_remaining = 0;
  std::exception_ptr error;

  /// Contiguous chunk c of the static split of [begin, end) into
  /// `chunks` pieces.
  [[nodiscard]] std::pair<std::size_t, std::size_t> chunk(std::size_t c) const {
    const std::size_t n = end - begin;
    const std::size_t lo = begin + n * c / chunks;
    const std::size_t hi = begin + n * (c + 1) / chunks;
    return {lo, hi};
  }

  void run_chunk(std::size_t c) noexcept {
    std::exception_ptr err;
    const auto started = std::chrono::steady_clock::now();
    try {
      const auto [lo, hi] = chunk(c);
      for (std::size_t i = lo; i < hi; ++i) (*body)(i);
    } catch (...) {
      err = std::current_exception();
    }
    chunk_latency_hist().observe(elapsed_ns(started));
    // Notify under the lock: the job lives on the caller's stack, so the
    // last completing chunk must not touch it after the caller can wake.
    const std::lock_guard<std::mutex> lock(mutex);
    if (err && !error) error = err;
    if (--chunks_remaining == 0) done_cv.notify_all();
  }
};

/// The pool this thread is currently executing inside (as caller or
/// worker). Lets a job that calls back into its own executor degrade to
/// an inline serial loop instead of deadlocking on the submission mutex.
thread_local const void* g_active_pool = nullptr;

}  // namespace

struct Executor::Pool {
  // Serializes whole parallel_for invocations: the pool tracks a single
  // in-flight job, so concurrent callers (e.g. two threads measuring via
  // Executor::shared()) must take turns rather than clobber each other.
  std::mutex submission_mutex;
  std::mutex mutex;
  std::condition_variable work_cv;
  std::vector<std::thread> workers;
  // The pending chunk assignments of the current job (worker side).
  ForJob* job = nullptr;
  std::size_t next_chunk = 0;
  bool shutting_down = false;

  explicit Pool(std::size_t worker_count) {
    workers.reserve(worker_count);
    for (std::size_t w = 0; w < worker_count; ++w)
      workers.emplace_back([this] { worker_loop(); });
  }

  ~Pool() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      shutting_down = true;
    }
    work_cv.notify_all();
    for (auto& t : workers) t.join();
  }

  void worker_loop() {
    g_active_pool = this;
    for (;;) {
      ForJob* my_job = nullptr;
      std::size_t my_chunk = 0;
      {
        std::unique_lock<std::mutex> lock(mutex);
        const auto wait_started = std::chrono::steady_clock::now();
        work_cv.wait(lock, [this] { return shutting_down || job != nullptr; });
        idle_counter().add(elapsed_ns(wait_started));
        if (shutting_down) return;
        my_job = job;
        my_chunk = next_chunk++;
        if (next_chunk >= my_job->chunks) job = nullptr;  // all chunks handed out
      }
      my_job->run_chunk(my_chunk);
    }
  }

  /// Publish chunks [1, job.chunks) to the workers; chunk 0 stays with
  /// the caller.
  void submit(ForJob& j) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      job = &j;
      next_chunk = 1;
      if (next_chunk >= j.chunks) job = nullptr;
    }
    work_cv.notify_all();
  }
};

Executor::Executor(std::size_t threads)
    : threads_(threads == 0 ? default_thread_count() : threads) {
  if (threads_ > 1) pool_ = std::make_unique<Pool>(threads_ - 1);
}

Executor::~Executor() = default;

void Executor::parallel_for(std::size_t begin, std::size_t end,
                            const std::function<void(std::size_t)>& body) const {
  if (!body) throw std::invalid_argument("parallel_for: empty body");
  if (begin >= end) return;

  const std::size_t n = end - begin;
  // Serial paths: threads == 1, nothing to split, or a reentrant call
  // from inside one of this executor's own jobs (running it inline avoids
  // deadlocking on the submission mutex / starving the worker).
  if (!pool_ || n == 1 || g_active_pool == pool_.get()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  ForJob job;
  job.body = &body;
  job.begin = begin;
  job.end = end;
  job.chunks = threads_ < n ? threads_ : n;
  job.chunks_remaining = job.chunks;
  jobs_counter().add(1);
  chunks_counter().add(job.chunks);
  queue_depth_gauge().record_max(job.chunks);

  const std::lock_guard<std::mutex> submission(pool_->submission_mutex);
  const void* previous_pool = g_active_pool;
  g_active_pool = pool_.get();
  pool_->submit(job);
  job.run_chunk(0);  // the caller participates
  {
    std::unique_lock<std::mutex> lock(job.mutex);
    job.done_cv.wait(lock, [&job] { return job.chunks_remaining == 0; });
    g_active_pool = previous_pool;
    if (job.error) std::rethrow_exception(job.error);
  }
}

std::size_t Executor::default_thread_count() {
  if (const char* env = std::getenv("DIVSEC_THREADS")) {
    try {
      const long v = std::stol(env);
      if (v >= 1) return static_cast<std::size_t>(v);
    } catch (const std::exception&) {
      // Malformed value: fall through to the hardware default.
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

Executor& Executor::shared() {
  static Executor instance(0);
  return instance;
}

}  // namespace divsec::sim
