// executor.h — a small thread pool for embarrassingly parallel index
// ranges.
//
// The measurement workloads (replications × configuration cells) are
// independent jobs whose outputs land in preassigned slots, so the only
// parallel primitive the library needs is a parallel_for over an index
// range with static chunking. Determinism is the caller's contract: a
// job's randomness must derive from its *index* (per-(seed, stream) Rng
// construction), never from thread identity or execution order, so
// results are bit-identical for any thread count.
//
// Thread count resolution: an explicit constructor argument wins; 0 means
// "the default", which honours the DIVSEC_THREADS environment variable
// and falls back to std::thread::hardware_concurrency(). A thread count
// of 1 is a pure serial path — no worker threads are spawned and
// parallel_for degenerates to a plain loop on the calling thread.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace divsec::sim {

class Executor {
 public:
  /// threads == 0 resolves to default_thread_count().
  explicit Executor(std::size_t threads = 0);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return threads_; }

  /// Invoke body(i) for every i in [begin, end). The range is split into
  /// thread_count() contiguous chunks (static chunking); the calling
  /// thread works on the first chunk. Blocks until every index completed.
  /// The first exception thrown by any body invocation is rethrown on the
  /// calling thread (remaining chunks still run to completion first).
  /// Concurrent parallel_for calls on one executor serialize against
  /// each other; a reentrant call from inside one of this executor's own
  /// jobs degrades to an inline serial loop (no nested parallelism).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body) const;

  /// parallel_for that collects f(i) into a vector indexed by i.
  template <typename T>
  [[nodiscard]] std::vector<T> parallel_map(
      std::size_t count, const std::function<T(std::size_t)>& f) const {
    std::vector<T> out(count);
    parallel_for(0, count,
                 [&out, &f](std::size_t i) { out[i] = f(i); });
    return out;
  }

  /// DIVSEC_THREADS if set to a positive integer, else
  /// hardware_concurrency(), else 1.
  [[nodiscard]] static std::size_t default_thread_count();

  /// Process-wide executor with the default thread count, constructed on
  /// first use. Measurement entry points fall back to this when no
  /// executor is supplied.
  [[nodiscard]] static Executor& shared();

 private:
  struct Pool;
  std::size_t threads_;
  std::unique_ptr<Pool> pool_;  // null when threads_ == 1
};

/// Shared executor-or-serial dispatch for low-level replication
/// controllers whose null default means "strictly serial".
inline void for_each_index(const Executor* executor, std::size_t begin,
                           std::size_t end,
                           const std::function<void(std::size_t)>& body) {
  if (executor) {
    executor->parallel_for(begin, end, body);
  } else {
    for (std::size_t i = begin; i < end; ++i) body(i);
  }
}

}  // namespace divsec::sim
