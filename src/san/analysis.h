// analysis.h — transient (Monte-Carlo) solution of SAN reward models.
//
// Implements the three estimator families the security indicators need:
//  * instant-of-time: E[f(marking at time t)]
//  * interval-of-time: E[integral of rate reward over [0, t]] (and its
//    time average)
//  * first passage: distribution of the first time a predicate holds
//    (Time-To-Attack / Time-To-Security-Failure are first-passage times).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "san/model.h"
#include "san/simulator.h"
#include "sim/replication.h"

namespace divsec::san {

// Every estimator takes a const model plus an explicit (seed, stream)
// replication scheme; passing an Executor parallelizes replications with
// bit-identical output (replication i always draws from stream i).

/// E[f(marking)] at simulated time t, by independent replications.
[[nodiscard]] sim::ReplicationResult instant_of_time(
    const SanModel& model, const std::function<double(const Marking&)>& f, double t,
    std::size_t replications, std::uint64_t seed,
    const sim::Executor* executor = nullptr);

/// E[time-average of rate(marking) over [0, t]].
[[nodiscard]] sim::ReplicationResult interval_of_time_average(
    const SanModel& model, const std::function<double(const Marking&)>& rate, double t,
    std::size_t replications, std::uint64_t seed,
    const sim::Executor* executor = nullptr);

/// First-passage study: per-replication absorption times, with censoring.
struct FirstPassageResult {
  std::vector<double> times;       // absorption times of uncensored runs
  std::size_t censored = 0;        // runs that never absorbed by t_max
  std::size_t replications = 0;
  double t_max = 0.0;

  /// Fraction of replications absorbed by t_max: the empirical
  /// P[absorbed <= t_max] (e.g. the probability of a successful attack
  /// within the mission time).
  [[nodiscard]] double absorption_probability() const noexcept {
    return replications ? static_cast<double>(times.size()) /
                              static_cast<double>(replications)
                        : 0.0;
  }
  /// Mean over uncensored runs (conditional mean time to absorption).
  [[nodiscard]] double conditional_mean() const noexcept;
};

[[nodiscard]] FirstPassageResult first_passage(const SanModel& model,
                                               const Predicate& absorbed, double t_max,
                                               std::size_t replications,
                                               std::uint64_t seed,
                                               const sim::Executor* executor = nullptr);

}  // namespace divsec::san
