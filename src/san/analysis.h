// analysis.h — transient (Monte-Carlo) solution of SAN reward models.
//
// Implements the three estimator families the security indicators need:
//  * instant-of-time: E[f(marking at time t)]
//  * interval-of-time: E[integral of rate reward over [0, t]] (and its
//    time average)
//  * first passage: distribution of the first time a predicate holds
//    (Time-To-Attack / Time-To-Security-Failure are first-passage times).
//
// All three families aggregate through the same streaming layer the
// measurement engine uses (sim::blocked_reduce over fixed-size
// replication blocks, merged in ascending block order): the retained
// flavours below keep their per-replication outputs, the *_streaming
// flavours drop them and run in O(block) memory — both are bit-identical
// for any executor thread count.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "san/model.h"
#include "san/simulator.h"
#include "sim/replication.h"
#include "stats/survival.h"

namespace divsec::san {

// Every estimator takes a const model plus an explicit (seed, stream)
// replication scheme; passing an Executor parallelizes replications with
// bit-identical output (replication i always draws from stream i).

/// E[f(marking)] at simulated time t, by independent replications.
[[nodiscard]] sim::ReplicationResult instant_of_time(
    const SanModel& model, const std::function<double(const Marking&)>& f, double t,
    std::size_t replications, std::uint64_t seed,
    const sim::Executor* executor = nullptr);

/// E[time-average of rate(marking) over [0, t]].
[[nodiscard]] sim::ReplicationResult interval_of_time_average(
    const SanModel& model, const std::function<double(const Marking&)>& rate, double t,
    std::size_t replications, std::uint64_t seed,
    const sim::Executor* executor = nullptr);

/// First-passage study: per-replication absorption times, with censoring.
struct FirstPassageResult {
  std::vector<double> times;       // absorption times of uncensored runs
  std::size_t censored = 0;        // runs that never absorbed by t_max
  std::size_t replications = 0;
  double t_max = 0.0;
  /// Censoring-aware aggregate of the absorption time (streaming
  /// product-limit restricted mean / median + P² sketches) — the
  /// unbiased companion to conditional_mean() under heavy censoring.
  stats::CensoredTimeSummary event_time;

  /// Fraction of replications absorbed by t_max: the empirical
  /// P[absorbed <= t_max] (e.g. the probability of a successful attack
  /// within the mission time).
  [[nodiscard]] double absorption_probability() const noexcept {
    return replications ? static_cast<double>(times.size()) /
                              static_cast<double>(replications)
                        : 0.0;
  }
  /// Mean over uncensored runs (conditional mean time to absorption).
  [[nodiscard]] double conditional_mean() const noexcept;
};

[[nodiscard]] FirstPassageResult first_passage(const SanModel& model,
                                               const Predicate& absorbed, double t_max,
                                               std::size_t replications,
                                               std::uint64_t seed,
                                               const sim::Executor* executor = nullptr);

/// Knobs of the sample-free streaming flavours below.
struct StreamingEstimateOptions {
  std::size_t replications = 1000;
  std::uint64_t seed = 0;
  /// Replications per reduction block; fixed (never thread-derived) so
  /// results are bit-identical for any executor. 0 resolves to
  /// sim::kDefaultReductionBlock.
  std::size_t replication_block = 0;
  /// Bins of the streaming product-limit estimator (first passage only).
  std::size_t survival_bins = 64;
  const sim::Executor* executor = nullptr;
};

/// instant_of_time without sample retention: O(block) memory.
[[nodiscard]] stats::OnlineStats instant_of_time_streaming(
    const SanModel& model, const std::function<double(const Marking&)>& f, double t,
    const StreamingEstimateOptions& options);

/// interval_of_time_average without sample retention: O(block) memory.
[[nodiscard]] stats::OnlineStats interval_of_time_average_streaming(
    const SanModel& model, const std::function<double(const Marking&)>& rate, double t,
    const StreamingEstimateOptions& options);

/// Sample-free first-passage summary (no times vector): censor counts,
/// moments of the censored-at-horizon times, and the censoring-aware
/// product-limit estimates — O(block + survival_bins) memory.
struct FirstPassageSummary {
  std::size_t replications = 0;
  double t_max = 0.0;
  std::size_t censored = 0;
  /// Moments of the absorption times clamped at t_max (biased under
  /// censoring — kept for comparability with the retained flavour).
  stats::OnlineStats censored_at_horizon;
  stats::CensoredTimeSummary event_time;

  [[nodiscard]] double absorption_probability() const noexcept {
    return replications ? static_cast<double>(replications - censored) /
                              static_cast<double>(replications)
                        : 0.0;
  }
};

[[nodiscard]] FirstPassageSummary first_passage_streaming(
    const SanModel& model, const Predicate& absorbed, double t_max,
    const StreamingEstimateOptions& options);

}  // namespace divsec::san
