#include "san/model.h"

#include <cmath>
#include <stdexcept>

namespace divsec::san {

PlaceId SanModel::add_place(std::string name, Tokens initial) {
  if (initial < 0) throw std::invalid_argument("add_place: negative initial tokens");
  places_.push_back(Place{std::move(name), initial});
  return places_.size() - 1;
}

ActivityId SanModel::add_timed_activity(std::string name, stats::Distribution delay,
                                        bool reactivate_on_change) {
  Activity a;
  a.name = std::move(name);
  a.kind = ActivityKind::kTimed;
  a.delay = std::move(delay);
  a.reactivate_on_change = reactivate_on_change;
  a.cases.push_back(Case{});  // implicit single case
  activities_.push_back(std::move(a));
  return activities_.size() - 1;
}

ActivityId SanModel::add_instantaneous_activity(std::string name, double weight) {
  if (!(weight > 0.0))
    throw std::invalid_argument("add_instantaneous_activity: weight must be > 0");
  Activity a;
  a.name = std::move(name);
  a.kind = ActivityKind::kInstantaneous;
  a.weight = weight;
  a.cases.push_back(Case{});
  activities_.push_back(std::move(a));
  return activities_.size() - 1;
}

Activity& SanModel::mutable_activity(ActivityId a) {
  if (a >= activities_.size()) throw std::out_of_range("invalid activity id");
  return activities_[a];
}

void SanModel::add_input_arc(ActivityId a, PlaceId p, Tokens multiplicity) {
  if (p >= places_.size()) throw std::out_of_range("add_input_arc: invalid place");
  if (multiplicity < 1) throw std::invalid_argument("add_input_arc: multiplicity < 1");
  mutable_activity(a).input_arcs.push_back(InputArc{p, multiplicity});
}

void SanModel::add_output_arc(ActivityId a, PlaceId p, Tokens multiplicity,
                              std::size_t case_index) {
  if (p >= places_.size()) throw std::out_of_range("add_output_arc: invalid place");
  if (multiplicity < 1) throw std::invalid_argument("add_output_arc: multiplicity < 1");
  auto& act = mutable_activity(a);
  if (case_index >= act.cases.size())
    throw std::out_of_range("add_output_arc: invalid case index");
  act.cases[case_index].output_arcs.push_back(OutputArc{p, multiplicity});
}

void SanModel::add_input_gate(ActivityId a, Predicate enabled, MarkingFn function) {
  if (!enabled) throw std::invalid_argument("add_input_gate: null predicate");
  mutable_activity(a).input_gates.push_back(
      InputGate{std::move(enabled), std::move(function)});
}

void SanModel::add_output_gate(ActivityId a, MarkingFn function, std::size_t case_index) {
  if (!function) throw std::invalid_argument("add_output_gate: null function");
  auto& act = mutable_activity(a);
  if (case_index >= act.cases.size())
    throw std::out_of_range("add_output_gate: invalid case index");
  act.cases[case_index].output_gates.push_back(OutputGate{std::move(function)});
}

void SanModel::set_rate_scale(ActivityId a,
                              std::function<double(const Marking&)> scale) {
  if (!scale) throw std::invalid_argument("set_rate_scale: null function");
  auto& act = mutable_activity(a);
  if (act.kind != ActivityKind::kTimed)
    throw std::invalid_argument("set_rate_scale: only timed activities have rates");
  act.rate_scale = std::move(scale);
  act.reactivate_on_change = true;
}

std::size_t SanModel::add_case(ActivityId a, double probability) {
  if (!(probability >= 0.0 && probability <= 1.0))
    throw std::invalid_argument("add_case: probability must be in [0,1]");
  auto& act = mutable_activity(a);
  // The first explicit case replaces the implicit default; mixing arcs
  // attached to the implicit default with explicit cases is an error.
  if (!act.explicit_cases) {
    if (!act.cases[0].output_arcs.empty() || !act.cases[0].output_gates.empty())
      throw std::logic_error(
          "add_case: arcs were already attached to the implicit default case of '" +
          act.name + "'; add cases before output arcs/gates");
    act.explicit_cases = true;
    act.cases[0].probability = probability;
    return 0;
  }
  act.cases.push_back(Case{probability, {}, {}});
  return act.cases.size() - 1;
}

PlaceId SanModel::place_by_name(const std::string& name) const {
  for (PlaceId p = 0; p < places_.size(); ++p)
    if (places_[p].name == name) return p;
  throw std::out_of_range("place_by_name: no place named '" + name + "'");
}

Marking SanModel::initial_marking() const {
  Marking m(places_.size());
  for (PlaceId p = 0; p < places_.size(); ++p) m[p] = places_[p].initial;
  return m;
}

void SanModel::validate() const {
  if (activities_.empty()) throw std::invalid_argument("SanModel: no activities");
  for (const auto& a : activities_) {
    if (a.cases.empty())
      throw std::invalid_argument("SanModel: activity '" + a.name + "' has no cases");
    double psum = 0.0;
    for (const auto& c : a.cases) psum += c.probability;
    if (std::fabs(psum - 1.0) > 1e-9)
      throw std::invalid_argument("SanModel: case probabilities of '" + a.name +
                                  "' sum to " + std::to_string(psum) + ", expected 1");
    if (a.kind == ActivityKind::kTimed && a.delay.mean() < 0.0)
      throw std::invalid_argument("SanModel: activity '" + a.name +
                                  "' has negative mean delay");
  }
}

}  // namespace divsec::san
