#include "san/simulator.h"

#include <algorithm>
#include <stdexcept>

namespace divsec::san {

SanSimulator::SanSimulator(const SanModel& model, stats::Rng rng)
    : model_(model), rng_(rng) {
  model_.validate();
  firing_counts_.resize(model_.activity_count(), 0);
  clocks_.resize(model_.activity_count(), kInf);
  reset();
}

std::size_t SanSimulator::add_rate_reward(std::function<double(const Marking&)> rate) {
  if (!rate) throw std::invalid_argument("add_rate_reward: null function");
  rate_rewards_.push_back(RateReward{std::move(rate), 0.0});
  return rate_rewards_.size() - 1;
}

std::size_t SanSimulator::add_impulse_reward(ActivityId activity, double amount) {
  if (activity >= model_.activity_count())
    throw std::out_of_range("add_impulse_reward: invalid activity");
  impulse_rewards_.push_back(ImpulseReward{activity, amount, 0.0});
  return impulse_rewards_.size() - 1;
}

double SanSimulator::rate_reward(std::size_t i) const {
  return rate_rewards_.at(i).integral;
}

double SanSimulator::rate_reward_average(std::size_t i) const {
  return now_ > 0.0 ? rate_rewards_.at(i).integral / now_ : 0.0;
}

double SanSimulator::impulse_reward(std::size_t i) const {
  return impulse_rewards_.at(i).value;
}

void SanSimulator::reset() {
  marking_ = model_.initial_marking();
  now_ = 0.0;
  total_firings_ = 0;
  std::fill(firing_counts_.begin(), firing_counts_.end(), std::size_t{0});
  std::fill(clocks_.begin(), clocks_.end(), kInf);
  for (auto& r : rate_rewards_) r.integral = 0.0;
  for (auto& r : impulse_rewards_) r.value = 0.0;
  resolve_instantaneous();
  refresh_clocks();
}

bool SanSimulator::is_enabled(const Activity& a) const {
  for (const auto& arc : a.input_arcs)
    if (marking_[arc.place] < arc.multiplicity) return false;
  for (const auto& gate : a.input_gates)
    if (!gate.enabled(marking_)) return false;
  return true;
}

std::size_t SanSimulator::select_case(const Activity& a) {
  if (a.cases.size() == 1) return 0;
  const double u = rng_.uniform();
  double cum = 0.0;
  for (std::size_t c = 0; c < a.cases.size(); ++c) {
    cum += a.cases[c].probability;
    if (u < cum) return c;
  }
  return a.cases.size() - 1;  // guard against rounding at u ~ 1
}

void SanSimulator::check_marking() const {
  for (PlaceId p = 0; p < marking_.size(); ++p)
    if (marking_[p] < 0)
      throw std::logic_error("SAN invariant violated: place '" + model_.place(p).name +
                             "' has negative tokens (gate function bug)");
}

void SanSimulator::fire(ActivityId id) {
  const Activity& a = model_.activity(id);
  for (const auto& arc : a.input_arcs) marking_[arc.place] -= arc.multiplicity;
  for (const auto& gate : a.input_gates)
    if (gate.function) gate.function(marking_);
  const std::size_t c = select_case(a);
  for (const auto& arc : a.cases[c].output_arcs) marking_[arc.place] += arc.multiplicity;
  for (const auto& gate : a.cases[c].output_gates) gate.function(marking_);
  check_marking();
  ++total_firings_;
  ++firing_counts_[id];
  for (auto& r : impulse_rewards_)
    if (r.activity == id) r.value += r.amount;
  if (trace_) trace_(now_, id, c);
}

void SanSimulator::refresh_clocks() {
  for (ActivityId id = 0; id < model_.activity_count(); ++id) {
    const Activity& a = model_.activity(id);
    if (a.kind != ActivityKind::kTimed) continue;
    if (is_enabled(a)) {
      if (clocks_[id] == kInf || a.reactivate_on_change) {
        double delay = a.delay.sample(rng_);
        if (a.rate_scale) {
          const double scale = a.rate_scale(marking_);
          if (!(scale > 0.0))
            throw std::logic_error("SAN: rate_scale of '" + a.name +
                                   "' must be > 0 while enabled");
          delay /= scale;
        }
        clocks_[id] = now_ + delay;
      }
      // else: keep the previously sampled completion time (standard
      // enabling-memory semantics).
    } else {
      clocks_[id] = kInf;  // abort
    }
  }
}

void SanSimulator::resolve_instantaneous() {
  for (std::size_t iter = 0; iter < kInstantaneousBudget; ++iter) {
    // Collect enabled instantaneous activities.
    double total_weight = 0.0;
    ActivityId chosen = model_.activity_count();
    // Weight-proportional selection in one pass (reservoir-style).
    for (ActivityId id = 0; id < model_.activity_count(); ++id) {
      const Activity& a = model_.activity(id);
      if (a.kind != ActivityKind::kInstantaneous || !is_enabled(a)) continue;
      total_weight += a.weight;
      if (rng_.uniform() < a.weight / total_weight) chosen = id;
    }
    if (chosen == model_.activity_count()) return;  // none enabled
    fire(chosen);
  }
  throw std::logic_error(
      "SAN instability: instantaneous activities fired > 1e6 times without "
      "time advancing");
}

void SanSimulator::advance_time(double t) {
  const double dt = t - now_;
  if (dt < 0.0) throw std::logic_error("SanSimulator: time moved backwards");
  for (auto& r : rate_rewards_) r.integral += r.rate(marking_) * dt;
  now_ = t;
}

bool SanSimulator::step() {
  ActivityId next = model_.activity_count();
  double t_min = kInf;
  for (ActivityId id = 0; id < clocks_.size(); ++id) {
    if (clocks_[id] < t_min) {
      t_min = clocks_[id];
      next = id;
    }
  }
  if (next == model_.activity_count()) return false;  // absorbed
  advance_time(t_min);
  clocks_[next] = kInf;
  fire(next);
  refresh_clocks();
  resolve_instantaneous();
  refresh_clocks();
  return true;
}

std::size_t SanSimulator::run_until(double t) {
  if (t < now_) throw std::invalid_argument("run_until: t in the past");
  std::size_t fired = 0;
  for (;;) {
    double t_min = kInf;
    for (double c : clocks_) t_min = std::min(t_min, c);
    if (t_min > t) break;
    if (step()) ++fired;
  }
  advance_time(t);
  return fired;
}

std::optional<double> SanSimulator::run_until_predicate(const Predicate& pred,
                                                        double t_max) {
  if (!pred) throw std::invalid_argument("run_until_predicate: null predicate");
  if (pred(marking_)) return now_;
  for (;;) {
    double t_min = kInf;
    for (double c : clocks_) t_min = std::min(t_min, c);
    if (t_min > t_max) break;
    if (!step()) break;
    if (pred(marking_)) return now_;
  }
  if (now_ < t_max) advance_time(t_max);
  return std::nullopt;
}

}  // namespace divsec::san
