// model.h — Stochastic Activity Networks (SAN).
//
// SANs (Sanders & Meyer) generalize stochastic Petri nets with input
// gates (arbitrary enabling predicates + marking functions), output gates
// (arbitrary marking functions) and probabilistic cases on activity
// completion. The paper's SCoPE case study "has been developed by means
// of the stochastic activity networks (SAN) formalism"; this module is
// the formalism, and simulator.h is its discrete-event solver.
//
// Semantics implemented (standard):
//  * an activity is enabled iff all its input arcs are satisfied and all
//    its input-gate predicates hold;
//  * enabled timed activities sample a completion time from their delay
//    distribution; if an activity becomes disabled before completing it
//    is aborted (its clock is discarded);
//  * instantaneous activities complete before any timed activity and
//    before time advances; ties are broken by weight-proportional random
//    selection;
//  * on completion, input arcs consume tokens, input-gate functions run,
//    one case is selected by its probability, and that case's output arcs
//    and output-gate functions run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/distributions.h"

namespace divsec::san {

using PlaceId = std::size_t;
using ActivityId = std::size_t;
using Tokens = std::int64_t;

/// A marking assigns a token count to every place.
using Marking = std::vector<Tokens>;

/// Arbitrary enabling predicate over the marking.
using Predicate = std::function<bool(const Marking&)>;
/// Arbitrary marking transformation (input/output gate function).
using MarkingFn = std::function<void(Marking&)>;

struct Place {
  std::string name;
  Tokens initial = 0;
};

struct InputArc {
  PlaceId place;
  Tokens multiplicity = 1;
};

struct OutputArc {
  PlaceId place;
  Tokens multiplicity = 1;
};

struct InputGate {
  Predicate enabled;   // must hold for the activity to be enabled
  MarkingFn function;  // applied when the activity completes (may be null)
};

struct OutputGate {
  MarkingFn function;  // applied after the case's output arcs
};

/// One probabilistic case of an activity.
struct Case {
  double probability = 1.0;
  std::vector<OutputArc> output_arcs;
  std::vector<OutputGate> output_gates;
};

enum class ActivityKind { kTimed, kInstantaneous };

struct Activity {
  std::string name;
  ActivityKind kind = ActivityKind::kTimed;
  stats::Distribution delay;  // timed only
  double weight = 1.0;        // instantaneous tie-breaking weight
  /// If true, the activity resamples its remaining delay whenever the
  /// marking changes while it stays enabled (SAN "reactivation").
  bool reactivate_on_change = false;
  /// Optional marking-dependent rate scale: the sampled delay is divided
  /// by rate_scale(marking) (> 0 whenever the activity is enabled). With
  /// an Exponential delay this is exactly a marking-dependent rate, e.g.
  /// min(c, queue) for an M/M/c server pool. Such activities should
  /// normally set reactivate_on_change so the rate tracks the marking.
  std::function<double(const Marking&)> rate_scale;
  /// Internal: whether add_case() has replaced the implicit default case.
  bool explicit_cases = false;
  std::vector<InputArc> input_arcs;
  std::vector<InputGate> input_gates;
  std::vector<Case> cases;  // at least one; probabilities sum to 1
};

/// Builder + immutable description of a SAN.
class SanModel {
 public:
  PlaceId add_place(std::string name, Tokens initial = 0);

  /// Add a timed activity with the given delay distribution.
  ActivityId add_timed_activity(std::string name, stats::Distribution delay,
                                bool reactivate_on_change = false);

  /// Add an instantaneous (zero-delay) activity with selection weight.
  ActivityId add_instantaneous_activity(std::string name, double weight = 1.0);

  /// Input arc: requires (and consumes) `multiplicity` tokens in `place`.
  void add_input_arc(ActivityId a, PlaceId p, Tokens multiplicity = 1);

  /// Output arc on case `c` (default case 0): deposits tokens on firing.
  void add_output_arc(ActivityId a, PlaceId p, Tokens multiplicity = 1,
                      std::size_t case_index = 0);

  void add_input_gate(ActivityId a, Predicate enabled, MarkingFn function = nullptr);
  void add_output_gate(ActivityId a, MarkingFn function, std::size_t case_index = 0);

  /// Attach a marking-dependent rate scale to a timed activity (see
  /// Activity::rate_scale). Implies reactivation on marking change.
  void set_rate_scale(ActivityId a, std::function<double(const Marking&)> scale);

  /// Append a probabilistic case; returns its index. Every activity starts
  /// with one implicit case of probability 1; the first add_case() call
  /// replaces that default (so probabilities you provide must sum to 1
  /// across all added cases).
  std::size_t add_case(ActivityId a, double probability);

  [[nodiscard]] std::size_t place_count() const noexcept { return places_.size(); }
  [[nodiscard]] std::size_t activity_count() const noexcept { return activities_.size(); }
  [[nodiscard]] const Place& place(PlaceId p) const { return places_.at(p); }
  [[nodiscard]] const Activity& activity(ActivityId a) const { return activities_.at(a); }

  /// Find a place by name; throws std::out_of_range if absent.
  [[nodiscard]] PlaceId place_by_name(const std::string& name) const;

  [[nodiscard]] Marking initial_marking() const;

  /// Structural validation: case probabilities sum to ~1, arcs reference
  /// valid places, every activity has at least one case. Throws
  /// std::invalid_argument on violation.
  void validate() const;

 private:
  Activity& mutable_activity(ActivityId a);
  std::vector<Place> places_;
  std::vector<Activity> activities_;
};

}  // namespace divsec::san
