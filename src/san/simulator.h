// simulator.h — discrete-event execution of a SanModel, with reward
// variables.
//
// The solver is a direct event-scheduling implementation: each enabled
// timed activity holds a sampled completion clock; the earliest clock
// fires next. Instantaneous activities always complete before time
// advances. Rate rewards are integrated exactly between events; impulse
// rewards accumulate on activity completion. All randomness comes from
// the Rng passed at construction, so a (model, seed) pair fully
// determines a trajectory.
#pragma once

#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "san/model.h"
#include "stats/rng.h"

namespace divsec::san {

class SanSimulator {
 public:
  /// The model must outlive the simulator. Validates the model.
  SanSimulator(const SanModel& model, stats::Rng rng);

  /// Rate reward: integral over time of `rate(marking)` dt.
  std::size_t add_rate_reward(std::function<double(const Marking&)> rate);

  /// Impulse reward: adds `amount` every time `activity` completes.
  std::size_t add_impulse_reward(ActivityId activity, double amount = 1.0);

  /// Accumulated integral of rate reward `i` up to now().
  [[nodiscard]] double rate_reward(std::size_t i) const;

  /// Time-average of rate reward `i` over [0, now()]; 0 at time 0.
  [[nodiscard]] double rate_reward_average(std::size_t i) const;

  [[nodiscard]] double impulse_reward(std::size_t i) const;

  /// Restore the initial marking, zero the clock and all rewards, and
  /// resolve initial instantaneous activities.
  void reset();

  /// Advance to (and fire) the next timed completion. Returns false when
  /// no timed activity is enabled (the SAN is absorbed / dead).
  bool step();

  /// Run until simulated time t (inclusive of events at t); integrates
  /// rate rewards up to exactly t. Returns the number of timed firings.
  std::size_t run_until(double t);

  /// Run until `pred(marking)` first holds or time exceeds t_max.
  /// Returns the absorption time, or nullopt if censored at t_max.
  std::optional<double> run_until_predicate(const Predicate& pred, double t_max);

  [[nodiscard]] const Marking& marking() const noexcept { return marking_; }
  [[nodiscard]] Tokens tokens(PlaceId p) const { return marking_.at(p); }
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t total_firings() const noexcept { return total_firings_; }
  [[nodiscard]] std::size_t firings_of(ActivityId a) const { return firing_counts_.at(a); }

  /// Optional trace callback: (time, activity id, selected case).
  void set_trace(std::function<void(double, ActivityId, std::size_t)> trace) {
    trace_ = std::move(trace);
  }

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();
  static constexpr std::size_t kInstantaneousBudget = 1'000'000;

  [[nodiscard]] bool is_enabled(const Activity& a) const;
  void fire(ActivityId id);
  void refresh_clocks();
  void resolve_instantaneous();
  void advance_time(double t);
  [[nodiscard]] std::size_t select_case(const Activity& a);
  void check_marking() const;

  const SanModel& model_;
  stats::Rng rng_;
  Marking marking_;
  double now_ = 0.0;
  std::vector<double> clocks_;  // per-activity completion time; kInf if idle
  std::size_t total_firings_ = 0;
  std::vector<std::size_t> firing_counts_;

  struct RateReward {
    std::function<double(const Marking&)> rate;
    double integral = 0.0;
  };
  struct ImpulseReward {
    ActivityId activity;
    double amount;
    double value = 0.0;
  };
  std::vector<RateReward> rate_rewards_;
  std::vector<ImpulseReward> impulse_rewards_;
  std::function<void(double, ActivityId, std::size_t)> trace_;
};

}  // namespace divsec::san
