#include "san/analysis.h"

#include <stdexcept>

namespace divsec::san {

sim::ReplicationResult instant_of_time(const SanModel& model,
                                       const std::function<double(const Marking&)>& f,
                                       double t, std::size_t replications,
                                       std::uint64_t seed,
                                       const sim::Executor* executor) {
  if (!f) throw std::invalid_argument("instant_of_time: null function");
  return sim::run_replications(
      [&model, &f, t](stats::Rng& rng) {
        SanSimulator sim(model, rng);
        sim.run_until(t);
        return f(sim.marking());
      },
      replications, seed, executor);
}

sim::ReplicationResult interval_of_time_average(
    const SanModel& model, const std::function<double(const Marking&)>& rate, double t,
    std::size_t replications, std::uint64_t seed, const sim::Executor* executor) {
  if (!rate) throw std::invalid_argument("interval_of_time_average: null function");
  if (!(t > 0.0))
    throw std::invalid_argument("interval_of_time_average: t must be > 0");
  return sim::run_replications(
      [&model, &rate, t](stats::Rng& rng) {
        SanSimulator sim(model, rng);
        const std::size_t r = sim.add_rate_reward(rate);
        sim.run_until(t);
        return sim.rate_reward_average(r);
      },
      replications, seed, executor);
}

double FirstPassageResult::conditional_mean() const noexcept {
  if (times.empty()) return 0.0;
  double s = 0.0;
  for (double t : times) s += t;
  return s / static_cast<double>(times.size());
}

FirstPassageResult first_passage(const SanModel& model, const Predicate& absorbed,
                                 double t_max, std::size_t replications,
                                 std::uint64_t seed, const sim::Executor* executor) {
  if (!absorbed) throw std::invalid_argument("first_passage: null predicate");
  if (!(t_max > 0.0)) throw std::invalid_argument("first_passage: t_max must be > 0");
  if (replications == 0)
    throw std::invalid_argument("first_passage: need >= 1 replication");
  FirstPassageResult r;
  r.replications = replications;
  r.t_max = t_max;
  // Per-replication absorption times by (seed, i) stream, then a fold in
  // replication order — identical to the serial loop for any thread count.
  std::vector<std::optional<double>> outcomes(replications);
  sim::for_each_index(executor, 0, replications,
                      [&model, &absorbed, t_max, seed, &outcomes](std::size_t i) {
                        stats::Rng rng(seed, i);
                        SanSimulator sim(model, rng);
                        outcomes[i] = sim.run_until_predicate(absorbed, t_max);
                      });
  for (const auto& t : outcomes) {
    if (t.has_value())
      r.times.push_back(*t);
    else
      ++r.censored;
  }
  return r;
}

}  // namespace divsec::san
