#include "san/analysis.h"

#include <stdexcept>

#include "sim/streaming.h"

namespace divsec::san {

namespace {

/// Shared streaming core of the scalar families: blocked deterministic
/// reduction of experiment outputs over (seed, i) streams. A non-null
/// `samples` additionally retains every output in replication order.
stats::OnlineStats reduce_scalar(const sim::Experiment& experiment,
                                 std::size_t replications, std::uint64_t seed,
                                 const sim::Executor* executor, std::size_t block,
                                 std::vector<double>* samples) {
  if (replications == 0)
    throw std::invalid_argument("san estimator: need >= 1 replication");
  if (samples) samples->resize(replications);
  return sim::blocked_reduce<stats::OnlineStats>(
      executor, replications, block, [] { return stats::OnlineStats{}; },
      [&](stats::OnlineStats& acc, std::size_t i) {
        stats::Rng rng(seed, /*stream=*/i);
        const double y = experiment(rng);
        if (samples) (*samples)[i] = y;
        acc.add(y);
      });
}

sim::Experiment instant_experiment(const SanModel& model,
                                   const std::function<double(const Marking&)>& f,
                                   double t) {
  if (!f) throw std::invalid_argument("instant_of_time: null function");
  return [&model, &f, t](stats::Rng& rng) {
    SanSimulator sim(model, rng);
    sim.run_until(t);
    return f(sim.marking());
  };
}

sim::Experiment interval_experiment(const SanModel& model,
                                    const std::function<double(const Marking&)>& rate,
                                    double t) {
  if (!rate) throw std::invalid_argument("interval_of_time_average: null function");
  if (!(t > 0.0))
    throw std::invalid_argument("interval_of_time_average: t must be > 0");
  return [&model, &rate, t](stats::Rng& rng) {
    SanSimulator sim(model, rng);
    const std::size_t r = sim.add_rate_reward(rate);
    sim.run_until(t);
    return sim.rate_reward_average(r);
  };
}

void validate_first_passage(const Predicate& absorbed, double t_max,
                            std::size_t replications) {
  if (!absorbed) throw std::invalid_argument("first_passage: null predicate");
  if (!(t_max > 0.0)) throw std::invalid_argument("first_passage: t_max must be > 0");
  if (replications == 0)
    throw std::invalid_argument("first_passage: need >= 1 replication");
}

}  // namespace

sim::ReplicationResult instant_of_time(const SanModel& model,
                                       const std::function<double(const Marking&)>& f,
                                       double t, std::size_t replications,
                                       std::uint64_t seed,
                                       const sim::Executor* executor) {
  sim::ReplicationResult r;
  r.stats = reduce_scalar(instant_experiment(model, f, t), replications, seed,
                          executor, 0, &r.samples);
  return r;
}

stats::OnlineStats instant_of_time_streaming(
    const SanModel& model, const std::function<double(const Marking&)>& f, double t,
    const StreamingEstimateOptions& options) {
  return reduce_scalar(instant_experiment(model, f, t), options.replications,
                       options.seed, options.executor, options.replication_block,
                       nullptr);
}

sim::ReplicationResult interval_of_time_average(
    const SanModel& model, const std::function<double(const Marking&)>& rate, double t,
    std::size_t replications, std::uint64_t seed, const sim::Executor* executor) {
  sim::ReplicationResult r;
  r.stats = reduce_scalar(interval_experiment(model, rate, t), replications, seed,
                          executor, 0, &r.samples);
  return r;
}

stats::OnlineStats interval_of_time_average_streaming(
    const SanModel& model, const std::function<double(const Marking&)>& rate, double t,
    const StreamingEstimateOptions& options) {
  return reduce_scalar(interval_experiment(model, rate, t), options.replications,
                       options.seed, options.executor, options.replication_block,
                       nullptr);
}

double FirstPassageResult::conditional_mean() const noexcept {
  if (times.empty()) return 0.0;
  double s = 0.0;
  for (double t : times) s += t;
  return s / static_cast<double>(times.size());
}

FirstPassageResult first_passage(const SanModel& model, const Predicate& absorbed,
                                 double t_max, std::size_t replications,
                                 std::uint64_t seed, const sim::Executor* executor) {
  validate_first_passage(absorbed, t_max, replications);
  FirstPassageResult r;
  r.replications = replications;
  r.t_max = t_max;
  // Per-replication absorption times by (seed, i) stream, aggregated
  // through the shared censored-time accumulator; the retained outcomes
  // feed the times vector in replication order afterwards.
  std::vector<std::optional<double>> outcomes(replications);
  // Same survival grid as the streaming flavour's default, so the two
  // report identical event_time summaries for identical inputs.
  const std::size_t bins = StreamingEstimateOptions{}.survival_bins;
  const auto acc = sim::blocked_reduce<stats::CensoredTimeAccumulator>(
      executor, replications, /*block=*/0,
      [t_max, bins] { return stats::CensoredTimeAccumulator(t_max, bins); },
      [&model, &absorbed, t_max, seed, &outcomes](
          stats::CensoredTimeAccumulator& a, std::size_t i) {
        stats::Rng rng(seed, i);
        SanSimulator sim(model, rng);
        const auto t = sim.run_until_predicate(absorbed, t_max);
        outcomes[i] = t;
        a.add(t.value_or(t_max), /*censored=*/!t.has_value());
      });
  r.event_time = acc.summarize();
  for (const auto& t : outcomes) {
    if (t.has_value())
      r.times.push_back(*t);
    else
      ++r.censored;
  }
  return r;
}

FirstPassageSummary first_passage_streaming(const SanModel& model,
                                            const Predicate& absorbed, double t_max,
                                            const StreamingEstimateOptions& options) {
  validate_first_passage(absorbed, t_max, options.replications);
  const auto acc = sim::blocked_reduce<stats::CensoredTimeAccumulator>(
      options.executor, options.replications, options.replication_block,
      [&options, t_max] {
        return stats::CensoredTimeAccumulator(t_max, options.survival_bins);
      },
      [&model, &absorbed, t_max, &options](stats::CensoredTimeAccumulator& a,
                                           std::size_t i) {
        stats::Rng rng(options.seed, i);
        SanSimulator sim(model, rng);
        const auto t = sim.run_until_predicate(absorbed, t_max);
        a.add(t.value_or(t_max), /*censored=*/!t.has_value());
      });
  FirstPassageSummary s;
  s.replications = options.replications;
  s.t_max = t_max;
  s.censored = acc.censored();
  s.censored_at_horizon = acc.moments();
  s.event_time = acc.summarize();
  return s;
}

}  // namespace divsec::san
