// diversity_planning.cpp — using the framework the way the paper intends:
// "a balanced approach between secure system design and diversification
// costs". Runs the ANOVA assessment to find which components matter, then
// the greedy cost-aware planner across a range of budgets, printing the
// resulting upgrade roadmaps.
//
//   ./diversity_planning [seed]
#include <cstdio>
#include <cstdlib>

#include "core/optimizer.h"
#include "core/pipeline.h"

using namespace divsec;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2013;

  const divers::VariantCatalog catalog = divers::VariantCatalog::standard(seed);
  const core::SystemDescription desc = core::make_scope_description(catalog);
  const attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();

  core::MeasurementOptions mo;
  mo.engine = core::Engine::kStagedSan;
  mo.replications = 1000;
  mo.seed = seed;

  std::printf("== Diversity planning for the SCoPE cooling system ==\n");

  // Step A: which components explain attack-success variance? (paper's
  // assessment step; tells us where diversification budget should go.)
  core::PipelineOptions po;
  po.measurement = mo;
  po.measurement.replications = 300;
  const core::Pipeline pipeline(desc, stuxnet, po);
  const auto assessment =
      pipeline.run({"os.corporate", "os.control", "plc.firmware", "firewall"}, 2)
          .assessment;
  std::printf("\n[assessment] components by success-probability variance share:\n");
  for (const auto& e : assessment.ranking)
    std::printf("  %-16s eta^2 = %.3f  (p = %.4f)\n", e.name.c_str(),
                e.eta_squared, e.p_value);

  // Step B: cost-aware upgrade roadmaps under increasing budgets.
  for (double budget : {2.0, 5.0, 12.0}) {
    const core::UpgradePlan plan =
        core::greedy_diversification(desc, stuxnet, mo, budget);
    std::printf("\n[plan] budget %.1f: P[attack success] %.3f -> %.3f  (cost %.1f)\n",
                budget, plan.baseline_success_prob, plan.planned_success_prob,
                plan.total_extra_cost);
    for (const auto& s : plan.steps)
      std::printf("  upgrade %-16s %-18s -> %-20s (+%.1f cost, P -> %.3f)\n",
                  s.component.c_str(), s.from_variant.c_str(),
                  s.to_variant.c_str(), s.extra_cost, s.success_prob_after);
    if (plan.steps.empty()) std::printf("  (no upgrade fits the budget)\n");
  }

  std::printf(
      "\nReading: the first units of budget buy the largest risk reduction\n"
      "(the choke-point components found by the ANOVA); further spending\n"
      "has diminishing returns — the paper's cost-balance argument.\n");
  return 0;
}
