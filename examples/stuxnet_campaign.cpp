// stuxnet_campaign.cpp — a single Stuxnet-like campaign traced event by
// event over the SCoPE network, monoculture vs diversified deployment.
//
// Shows the paper's attack stages (initial -> activated -> root access ->
// network propagation -> device impairment) playing out on a concrete
// topology, and how the same worm stalls when the components it targets
// are diverse.
//
//   ./stuxnet_campaign [seed]
#include <cstdio>
#include <cstdlib>

#include "attack/campaign.h"
#include "core/configuration.h"

using namespace divsec;

namespace {

void trace_campaign(const char* title, const attack::Scenario& scenario,
                    const divers::VariantCatalog& catalog, std::uint64_t seed) {
  std::printf("\n--- %s ---\n", title);
  attack::CampaignOptions opts;
  opts.record_events = true;
  const attack::CampaignSimulator sim(scenario, attack::ThreatProfile::stuxnet(),
                                      catalog, {}, opts);
  stats::Rng rng(seed);
  const attack::CampaignResult r = sim.run(rng);

  for (const auto& e : r.events) {
    std::printf("  t=%8.1f h  %-18s %s\n", e.time,
                scenario.topology.node(e.node).name.c_str(), to_string(e.kind));
  }
  std::printf("  outcome: %s\n", r.attack_succeeded()
                                     ? "ATTACK SUCCEEDED (device impaired)"
                                 : r.detected() ? "attack detected and halted"
                                                : "attack incomplete at horizon");
  if (r.time_to_attack)
    std::printf("  Time-To-Attack: %.1f h\n", *r.time_to_attack);
  if (r.time_to_detection)
    std::printf("  Time-To-Security-Failure: %.1f h\n", *r.time_to_detection);
  std::printf("  hosts compromised: %zu, PLCs compromised: %zu\n",
              r.hosts_compromised, r.plcs_compromised);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  const divers::VariantCatalog catalog = divers::VariantCatalog::standard(2013);
  const core::SystemDescription desc = core::make_scope_description(catalog);

  std::printf("== One Stuxnet-like campaign, traced (seed %llu) ==\n",
              static_cast<unsigned long long>(seed));

  trace_campaign("monoculture deployment",
                 desc.instantiate(desc.baseline_configuration()), catalog, seed);

  core::Configuration diverse = desc.baseline_configuration();
  diverse.variant[1] = 2;  // control-zone OS -> linux
  diverse.variant[2] = 3;  // PLC firmware -> abb
  diverse.variant[4] = 1;  // firewall -> ngfw
  trace_campaign("diversified deployment (control OS, PLC firmware, firewall)",
                 desc.instantiate(diverse), catalog, seed);

  std::printf(
      "\nSame worm, same seed: on the monoculture every exploit ports\n"
      "unchanged; on the diversified system the attacker burns attempts on\n"
      "components its exploits were not developed against.\n");
  return 0;
}
