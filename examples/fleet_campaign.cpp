// fleet_campaign.cpp — an enterprise{N} preset driven end to end:
// generate the fleet, sweep attack campaigns over three diversity
// policies through the measurement engine, and report the paper's
// indicators (TTA / TTSF / compromised ratio) next to the mean-field
// epidemic baseline computed on the campaign's own reachability index.
//
//   ./example_fleet_campaign [nodes] [seed]      (default: 256 2013)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/measurement.h"
#include "net/epidemic.h"
#include "net/reachability_index.h"
#include "scenario/presets.h"

using namespace divsec;

int main(int argc, char** argv) {
  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2013;
  const std::string preset = "enterprise" + std::to_string(nodes);

  const divers::VariantCatalog catalog = divers::VariantCatalog::standard(2013);
  const attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();

  // One fleet, three deployment policies: the sweep cells differ only in
  // the seeded variant assignment.
  const scenario::VariantPolicy policies[] = {
      scenario::VariantPolicy::kMonoculture,
      scenario::VariantPolicy::kZoneStratified,
      scenario::VariantPolicy::kRandomPerNode,
  };
  core::ScenarioSweepPlan plan;
  for (std::size_t i = 0; i < 3; ++i)
    plan.cells.push_back(
        {scenario::make_preset(preset, catalog, seed, policies[i]).scenario,
         seed + i});

  const attack::Scenario& fleet = plan.cells[0].scenario;
  std::printf("== %s: %zu nodes, %zu links, %zu entry nodes, %zu target PLCs ==\n",
              preset.c_str(), fleet.topology.node_count(),
              fleet.topology.link_count(), fleet.entry_nodes.size(),
              fleet.target_plcs.size());

  core::MeasurementOptions mo;
  mo.engine = core::Engine::kCampaign;
  mo.replications = 100;
  mo.seed = seed;
  mo.keep_samples = false;
  const core::MeasurementEngine engine(catalog, stuxnet, mo);
  const auto summaries = engine.measure_scenarios(plan);

  std::printf("\n%-18s %-12s %-14s %-14s %-12s\n", "policy", "P(success)",
              "mean TTA (h)", "mean TTSF (h)", "final c(t)");
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& s = summaries[i];
    std::printf("%-18s %-12.3f %-14.1f %-14.1f %-12.4f\n",
                to_string(policies[i]), s.attack_success_probability(),
                s.tta.mean(), s.ttsf.mean(), s.final_ratio.mean());
  }

  // Mean-field SI baseline over the monoculture fleet's reachability,
  // sharing the campaign's precomputed index instead of re-deriving the
  // all-pairs relation.
  const attack::CampaignSimulator sim(fleet, stuxnet, catalog);
  net::MeanFieldEpidemic epidemic(
      sim.reachability(),
      {net::Channel::kUsb, net::Channel::kSmbShare, net::Channel::kPrintSpooler},
      fleet.entry_nodes, {0.02, 0.5});
  epidemic.advance(mo.campaign.t_max_hours);
  std::printf("\nmean-field SI envelope at the horizon: c = %.4f\n",
              epidemic.compromised_ratio());
  std::printf(
      "\nThe worm model ignores exploit failure and detection, so it bounds\n"
      "what topology alone allows; each diversity policy pulls the campaign\n"
      "curve further below that envelope.\n");
  return 0;
}
