// scope_cooling.cpp — the paper's case study at the physical level: the
// SCoPE data-center cooling SCADA under a Stuxnet-style PLC compromise.
//
// Runs the full plant (thermal model + two PLCs + Modbus polling +
// historian + alarms) through four scenarios and prints an operator-style
// timeline for each:
//   1. normal operation,
//   2. sabotage with honest reporting,
//   3. sabotage with Stuxnet replay spoofing,
//   4. sabotage with replay spoofing vs a diverse redundant sensor path.
//
//   ./scope_cooling [seed]
#include <cstdio>
#include <cstdlib>

#include "scada/cooling_system.h"

using namespace divsec::scada;

namespace {

void timeline(const char* title, bool sabotage, SpoofMode spoof, bool redundant,
              std::uint64_t seed) {
  std::printf("\n--- %s ---\n", title);
  CoolingSystem::Options opts;
  opts.plc_scan_s = 1.0;
  opts.poll_interval_s = 5.0;
  opts.redundant_sensor_path = redundant;
  CoolingSystem sys(opts, seed);

  constexpr double kCompromiseAt = 1800.0;
  constexpr double kEnd = 4.0 * 3600.0;
  constexpr double kReport = 600.0;

  std::printf("%8s %10s %10s %8s %10s\n", "t (s)", "room C", "water C", "fan",
              "status");
  for (double t = 0.0; t < kEnd; t += kReport) {
    if (sabotage && t <= kCompromiseAt && kCompromiseAt < t + kReport) {
      sys.advance(kCompromiseAt - t);
      sys.compromise_crac_plc(spoof);
      sys.advance(t + kReport - kCompromiseAt);
      std::printf("%8.0f  << CRAC PLC reprogrammed (%s) >>\n", kCompromiseAt,
                  spoof == SpoofMode::kNone      ? "honest reporting"
                  : spoof == SpoofMode::kConstant ? "frozen value"
                                                  : "replay spoofing");
    } else {
      sys.advance(kReport);
    }
    const char* status = "ok";
    if (sys.impaired() && *sys.impairment_time_s() <= t + kReport)
      status = "OVERHEATED";
    else if (sys.first_detection_time_s() &&
             *sys.first_detection_time_s() <= t + kReport)
      status = "ALARM";
    std::printf("%8.0f %10.2f %10.2f %8.2f %10s\n", t + kReport,
                sys.room_temp_c(), sys.water_temp_c(), sys.crac_plc().output(0),
                status);
  }
  std::printf("impairment: %s;  first detection: %s\n",
              sys.impairment_time_s()
                  ? (std::to_string(static_cast<int>(*sys.impairment_time_s())) + " s")
                        .c_str()
                  : "never",
              sys.first_detection_time_s()
                  ? (std::to_string(static_cast<int>(*sys.first_detection_time_s())) +
                     " s")
                        .c_str()
                  : "never");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;
  std::printf("== SCoPE cooling system: physical-level Stuxnet scenarios ==\n");
  timeline("1. normal operation", false, SpoofMode::kNone, false, seed);
  timeline("2. sabotage, honest reporting (alarms catch it)", true,
           SpoofMode::kNone, false, seed);
  timeline("3. sabotage, replay spoofing (operators see nothing)", true,
           SpoofMode::kReplay, false, seed);
  timeline("4. sabotage, replay spoofing vs diverse redundant sensing", true,
           SpoofMode::kReplay, true, seed);
  return 0;
}
