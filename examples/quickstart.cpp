// quickstart.cpp — minimal end-to-end tour of the divsec API.
//
// Builds the standard variant catalog and the SCoPE cooling-system
// description, measures the paper's three security indicators for the
// monoculture and for a diversified configuration under a Stuxnet-like
// threat, then runs the full three-step pipeline (attack modeling ->
// DoE & measurement -> ANOVA assessment) on a small component subset.
//
//   ./quickstart [seed]
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "core/configuration.h"
#include "core/indicators.h"
#include "core/pipeline.h"

using namespace divsec;

namespace {

void print_summary(const char* label, const core::IndicatorSummary& s) {
  // The censored-at-horizon means are biased low when many runs censor;
  // print the product-limit (censoring-aware) estimates next to them.
  const auto median = [](const std::optional<double>& m) {
    return m ? std::to_string(*m) : std::string(">horizon");
  };
  std::cout << "  " << label << "\n"
            << "    attack success probability: " << s.attack_success_probability()
            << "\n"
            << "    mean TTA  (h, censored at " << s.horizon_hours
            << "): " << s.tta.mean() << "  (censored " << s.tta_censored << "/"
            << s.replications << ")\n"
            << "      censor-aware: restricted mean " << s.tta_event.restricted_mean
            << " h, median " << median(s.tta_event.median) << "\n"
            << "    mean TTSF (h, censored at " << s.horizon_hours
            << "): " << s.ttsf.mean() << "  (censored " << s.ttsf_censored << "/"
            << s.replications << ")\n"
            << "      censor-aware: restricted mean " << s.ttsf_event.restricted_mean
            << " h, median " << median(s.ttsf_event.median) << "\n"
            << "    mean final compromised ratio: " << s.final_ratio.mean() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2013;

  // 1. Substrate: component variants with real (toy-ISA) binaries.
  const divers::VariantCatalog catalog = divers::VariantCatalog::standard(seed);
  const core::SystemDescription scope = core::make_scope_description(catalog);
  const attack::ThreatProfile stuxnet = attack::ThreatProfile::stuxnet();

  core::MeasurementOptions mo;
  mo.engine = core::Engine::kCampaign;
  mo.replications = 200;
  mo.seed = seed;

  std::cout << "== divsec quickstart: SCoPE cooling system vs " << stuxnet.name
            << " ==\n\n";

  // 2. Indicators: monoculture vs a diversified deployment.
  const core::Configuration mono = scope.baseline_configuration();
  core::Configuration diverse = mono;
  // Diversify the control-zone OS, the PLC firmware, and the firewall.
  diverse.variant[1] = 2;  // os.control -> os.linux_lts
  diverse.variant[2] = 3;  // plc.firmware -> plc.abb_ac800
  diverse.variant[4] = 1;  // firewall -> fw.ngfw

  std::cout << "[indicators]\n";
  print_summary("monoculture (all baseline variants):",
                core::measure_indicators(scope, mono, stuxnet, mo));
  print_summary("diversified (control OS + PLC firmware + firewall):",
                core::measure_indicators(scope, diverse, stuxnet, mo));
  std::cout << "  extra cost of the diversified configuration: "
            << scope.extra_cost(diverse) << " (baseline-variant units)\n\n";

  // 3. The paper's three-step pipeline on a 3-component subset.
  core::PipelineOptions po;
  po.measurement = mo;
  po.measurement.engine = core::Engine::kStagedSan;  // fast abstraction
  po.measurement.replications = 200;
  const core::Pipeline pipeline(scope, stuxnet, po);
  const auto result =
      pipeline.run({"os.control", "plc.firmware", "firewall"}, /*max_levels=*/2);

  std::cout << "[pipeline]\n" << result.assessment.report << "\n";
  return 0;
}
