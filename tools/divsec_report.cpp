// divsec_report — command-line front end for the three-step pipeline.
//
// Runs Attack Modeling -> DoE & Measurement -> ANOVA assessment on the
// SCoPE cooling-system description and writes the artifacts to disk:
//   <prefix>_measurements.csv   per-configuration indicator estimates
//   <prefix>_anova_success.csv  variance allocation for P[success]
//   <prefix>_anova_tta.csv      variance allocation for Time-To-Attack
//   <prefix>_anova_ttsf.csv     variance allocation for TTSF
//   <prefix>_report.md          human-readable assessment
//
// With --from-merged, skips measurement entirely and reports on the
// merged output of a distributed sweep (`divsec_sweep merge`'s
// *_merged.state): writes <prefix>_measurements.csv and
// <prefix>_report.md from the merged per-cell accumulators. The ANOVA
// step is not available on merged sweeps: the variance-allocation tables
// need per-replication responses grouped by a multi-factor DoE design,
// while a policy sweep has one factor (the policy arm) and its mergeable
// state intentionally retains only accumulator sketches, not per-
// replication samples. Per-cell means/variances and the censoring-aware
// survival estimates survive the merge exactly, so the measurement table
// is complete; the ANOVA sections are simply omitted.
//
// Usage:
//   divsec_report [--threat stuxnet|duqu|flame] [--engine san|campaign]
//                 [--replications N] [--seed S] [--levels L]
//                 [--components a,b,c] [--out prefix]
//   divsec_report --from-merged FILE_merged.state [--out prefix]
//   divsec_report --help | --version
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/report.h"
#include "dist/sweep.h"
#include "util/version.h"

using namespace divsec;

namespace {

struct Args {
  std::string threat = "stuxnet";
  std::string engine = "san";
  std::size_t replications = 400;
  std::uint64_t seed = 2013;
  std::size_t levels = 0;  // 0 = all variant levels
  std::vector<std::string> components{"os.control", "plc.firmware", "firewall"};
  std::string out = "divsec";
  std::string from_merged;  // merged sweep state to report on instead
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

enum class ParseResult { kRun, kHelp, kVersion, kError };

ParseResult parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--threat") {
      const char* v = need_value();
      if (!v) return ParseResult::kError;
      args.threat = v;
    } else if (flag == "--engine") {
      const char* v = need_value();
      if (!v) return ParseResult::kError;
      args.engine = v;
    } else if (flag == "--replications") {
      const char* v = need_value();
      if (!v) return ParseResult::kError;
      args.replications = std::strtoull(v, nullptr, 10);
    } else if (flag == "--seed") {
      const char* v = need_value();
      if (!v) return ParseResult::kError;
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--levels") {
      const char* v = need_value();
      if (!v) return ParseResult::kError;
      args.levels = std::strtoull(v, nullptr, 10);
    } else if (flag == "--components") {
      const char* v = need_value();
      if (!v) return ParseResult::kError;
      args.components = split_csv(v);
    } else if (flag == "--out") {
      const char* v = need_value();
      if (!v) return ParseResult::kError;
      args.out = v;
    } else if (flag == "--from-merged") {
      const char* v = need_value();
      if (!v) return ParseResult::kError;
      args.from_merged = v;
    } else if (flag == "--help" || flag == "-h") {
      return ParseResult::kHelp;
    } else if (flag == "--version") {
      return ParseResult::kVersion;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return ParseResult::kError;
    }
  }
  return ParseResult::kRun;
}

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: divsec_report [--threat stuxnet|duqu|flame] [--engine san|campaign]\n"
      "                     [--replications N] [--seed S] [--levels L]\n"
      "                     [--components a,b,c] [--out prefix]\n"
      "       divsec_report --from-merged FILE_merged.state [--out prefix]\n"
      "       divsec_report --help | --version\n"
      "\n"
      "--from-merged reports on a distributed sweep reduced by `divsec_sweep\n"
      "merge`: writes <prefix>_measurements.csv and <prefix>_report.md from\n"
      "the merged per-cell accumulators. ANOVA tables are omitted in this\n"
      "mode — variance allocation needs per-replication responses over a\n"
      "multi-factor design, which the mergeable accumulator state (by\n"
      "design) does not retain.\n");
}

/// Report on `divsec_sweep merge` output: the measurement table survives
/// the merge exactly; ANOVA does not apply (see usage()).
int report_from_merged(const Args& args) {
  const dist::ShardState merged = dist::read_shard_state(args.from_merged);
  const auto summaries = dist::summaries_from_merged(merged);
  const std::string csv = dist::sweep_csv(merged.meta, summaries);
  core::save_to_file(args.out + "_measurements.csv", csv);

  std::string md = "# Distributed sweep: " + merged.meta.preset + " vs " +
                   merged.meta.threat + "\n\n";
  md += "- cells: " + std::to_string(merged.meta.cells) +
        " policy arms, replications/cell: " +
        std::to_string(merged.meta.replications) + "\n";
  md += "- merged from a " + std::to_string(merged.meta.shard_count) +
        "-shard run (state format v" +
        std::to_string(dist::kStateFormatVersion) + ")\n";
  md += "- sweep fingerprint " +
        dist::fingerprint_hex(dist::sweep_fingerprint(merged.meta)) +
        ", cost fingerprint " +
        dist::fingerprint_hex(dist::cost_fingerprint(merged.meta)) + "\n";
  if (merged.cost.measured()) {
    md += "- measured cost (weights for `divsec_sweep plan`):";
    for (std::size_t c = 0; c < merged.cost.cells.size(); ++c) {
      if (merged.cost.cells[c].replications == 0) continue;
      char cost[96];
      std::snprintf(cost, sizeof(cost), "%s %s=%.3g s/rep",
                    c ? "," : "",
                    scenario::to_string(merged.meta.policies[c]),
                    merged.cost.sec_per_rep(c));
      md += cost;
    }
    md += "\n";
  }
  md += "\n";
  md += "| policy | P[success] | TTA rmean (h) | TTSF rmean (h) | final ratio |\n";
  md += "|---|---|---|---|---|\n";
  for (std::size_t c = 0; c < summaries.size(); ++c) {
    const auto& s = summaries[c];
    char row[256];
    std::snprintf(row, sizeof(row), "| %s | %.4f | %.2f | %.2f | %.4f |\n",
                  scenario::to_string(merged.meta.policies[c]),
                  s.attack_success_probability(),
                  s.tta_event.restricted_mean, s.ttsf_event.restricted_mean,
                  s.final_ratio.mean());
    md += row;
  }
  md += "\n_ANOVA omitted: merged sweep state carries per-cell accumulator\n"
        "sketches, not the per-replication multi-factor responses the\n"
        "variance-allocation tables require._\n";
  core::save_to_file(args.out + "_report.md", md);
  std::printf("wrote %s_measurements.csv and %s_report.md from %s\n",
              args.out.c_str(), args.out.c_str(), args.from_merged.c_str());
  std::printf("\n%s\n", md.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  switch (parse(argc, argv, args)) {
    case ParseResult::kHelp:
      usage(stdout);
      return 0;
    case ParseResult::kVersion:
      std::printf("divsec_report %s\n", util::kVersion);
      return 0;
    case ParseResult::kError:
      usage(stderr);
      return 2;
    case ParseResult::kRun:
      break;
  }

  if (!args.from_merged.empty()) {
    try {
      return report_from_merged(args);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  attack::ThreatProfile profile = attack::ThreatProfile::stuxnet();
  if (args.threat == "duqu") profile = attack::ThreatProfile::duqu();
  else if (args.threat == "flame") profile = attack::ThreatProfile::flame();
  else if (args.threat != "stuxnet") {
    std::fprintf(stderr, "unknown threat: %s\n", args.threat.c_str());
    return 2;
  }

  core::PipelineOptions po;
  if (args.engine == "san") po.measurement.engine = core::Engine::kStagedSan;
  else if (args.engine == "campaign") po.measurement.engine = core::Engine::kCampaign;
  else {
    std::fprintf(stderr, "unknown engine: %s\n", args.engine.c_str());
    return 2;
  }
  po.measurement.replications = args.replications;
  po.measurement.seed = args.seed;

  try {
    const divers::VariantCatalog catalog = divers::VariantCatalog::standard(args.seed);
    const core::SystemDescription desc = core::make_scope_description(catalog);
    const core::Pipeline pipeline(desc, profile, po);

    std::printf("measuring %s with the %s engine (%zu replications/config)...\n",
                args.threat.c_str(), args.engine.c_str(), args.replications);
    const auto result = pipeline.run(args.components, args.levels);

    core::save_to_file(args.out + "_measurements.csv",
                       core::measurement_csv(result.table));
    core::save_to_file(args.out + "_anova_success.csv",
                       core::anova_csv(result.assessment.success_anova));
    core::save_to_file(args.out + "_anova_tta.csv",
                       core::anova_csv(result.assessment.tta_anova));
    core::save_to_file(args.out + "_anova_ttsf.csv",
                       core::anova_csv(result.assessment.ttsf_anova));
    core::save_to_file(
        args.out + "_report.md",
        core::assessment_markdown(result.assessment,
                                  "Diversity assessment: " + args.threat +
                                      " vs SCoPE cooling system"));
    std::printf("wrote %s_{measurements,anova_*}.csv and %s_report.md\n",
                args.out.c_str(), args.out.c_str());
    std::printf("\n%s\n", result.assessment.report.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
