// divsec_report — command-line front end for the three-step pipeline.
//
// Runs Attack Modeling -> DoE & Measurement -> ANOVA assessment on the
// SCoPE cooling-system description and writes the artifacts to disk:
//   <prefix>_measurements.csv   per-configuration indicator estimates
//   <prefix>_anova_success.csv  variance allocation for P[success]
//   <prefix>_anova_tta.csv      variance allocation for Time-To-Attack
//   <prefix>_anova_ttsf.csv     variance allocation for TTSF
//   <prefix>_report.md          human-readable assessment
//
// Usage:
//   divsec_report [--threat stuxnet|duqu|flame] [--engine san|campaign]
//                 [--replications N] [--seed S] [--levels L]
//                 [--components a,b,c] [--out prefix]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/report.h"

using namespace divsec;

namespace {

struct Args {
  std::string threat = "stuxnet";
  std::string engine = "san";
  std::size_t replications = 400;
  std::uint64_t seed = 2013;
  std::size_t levels = 0;  // 0 = all variant levels
  std::vector<std::string> components{"os.control", "plc.firmware", "firewall"};
  std::string out = "divsec";
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--threat") {
      const char* v = need_value();
      if (!v) return false;
      args.threat = v;
    } else if (flag == "--engine") {
      const char* v = need_value();
      if (!v) return false;
      args.engine = v;
    } else if (flag == "--replications") {
      const char* v = need_value();
      if (!v) return false;
      args.replications = std::strtoull(v, nullptr, 10);
    } else if (flag == "--seed") {
      const char* v = need_value();
      if (!v) return false;
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--levels") {
      const char* v = need_value();
      if (!v) return false;
      args.levels = std::strtoull(v, nullptr, 10);
    } else if (flag == "--components") {
      const char* v = need_value();
      if (!v) return false;
      args.components = split_csv(v);
    } else if (flag == "--out") {
      const char* v = need_value();
      if (!v) return false;
      args.out = v;
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: divsec_report [--threat stuxnet|duqu|flame] [--engine san|campaign]\n"
      "                     [--replications N] [--seed S] [--levels L]\n"
      "                     [--components a,b,c] [--out prefix]\n");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    usage();
    return 2;
  }

  attack::ThreatProfile profile = attack::ThreatProfile::stuxnet();
  if (args.threat == "duqu") profile = attack::ThreatProfile::duqu();
  else if (args.threat == "flame") profile = attack::ThreatProfile::flame();
  else if (args.threat != "stuxnet") {
    std::fprintf(stderr, "unknown threat: %s\n", args.threat.c_str());
    return 2;
  }

  core::PipelineOptions po;
  if (args.engine == "san") po.measurement.engine = core::Engine::kStagedSan;
  else if (args.engine == "campaign") po.measurement.engine = core::Engine::kCampaign;
  else {
    std::fprintf(stderr, "unknown engine: %s\n", args.engine.c_str());
    return 2;
  }
  po.measurement.replications = args.replications;
  po.measurement.seed = args.seed;

  try {
    const divers::VariantCatalog catalog = divers::VariantCatalog::standard(args.seed);
    const core::SystemDescription desc = core::make_scope_description(catalog);
    const core::Pipeline pipeline(desc, profile, po);

    std::printf("measuring %s with the %s engine (%zu replications/config)...\n",
                args.threat.c_str(), args.engine.c_str(), args.replications);
    const auto result = pipeline.run(args.components, args.levels);

    core::save_to_file(args.out + "_measurements.csv",
                       core::measurement_csv(result.table));
    core::save_to_file(args.out + "_anova_success.csv",
                       core::anova_csv(result.assessment.success_anova));
    core::save_to_file(args.out + "_anova_tta.csv",
                       core::anova_csv(result.assessment.tta_anova));
    core::save_to_file(args.out + "_anova_ttsf.csv",
                       core::anova_csv(result.assessment.ttsf_anova));
    core::save_to_file(
        args.out + "_report.md",
        core::assessment_markdown(result.assessment,
                                  "Diversity assessment: " + args.threat +
                                      " vs SCoPE cooling system"));
    std::printf("wrote %s_{measurements,anova_*}.csv and %s_report.md\n",
                args.out.c_str(), args.out.c_str());
    std::printf("\n%s\n", result.assessment.report.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
