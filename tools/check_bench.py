#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json trajectory.

Every bench binary writes BENCH_<name>.json records ({name, wall_ms,
threads, speedup, peak_mb}); this tool compares freshly produced files
against the committed baselines in bench/baselines/ and fails (exit 1)
when a metric regresses past its tolerance:

  * wall_ms   may not rise above baseline * (1 + --wall-tol); getting
              faster is always fine. Records whose baseline wall is
              below the noise floor are skipped for wall comparison —
              timer noise dominates sub-millisecond phases. The floor is
              per metric: a baseline record carrying "wall_floor_ms"
              overrides the global --wall-floor-ms for that record, so a
              sub-millisecond metric (per-round merge time) can opt into
              a floor that fits its own scale instead of being silently
              exempted by the global 5 ms default.
  * speedup   may not fall below baseline * (1 - --speedup-tol) — the
              speedup floors (e.g. the indexed-engine 5x, the elastic
              worst-shard 1.3x improvement).
  * peak_mb   may not rise above baseline * (1 + --peak-tol) — the
              footprint ceilings (aggregation state, peak-RSS deltas).
              null baselines or null measurements skip the check.
  * state_bytes may not rise above baseline * (1 + --state-tol) — the
              codec-size ceiling (encoded shard-state bytes; lower is
              better, shrinking is always fine). Encoded sizes are
              deterministic for a fixed workload, so the tolerance is
              tight. null baselines or measurements skip the check.

A record present in the baseline but missing from the produced file is a
failure (a gated metric silently disappeared). Produced records without
a baseline are reported as new; refresh with --update after reviewing.

Usage:
  tools/check_bench.py BENCH_*.json               # gate (CI)
  tools/check_bench.py --update BENCH_*.json      # refresh baselines
"""

import argparse
import json
import math
import os
import shutil
import sys

DEFAULT_BASELINE_DIR = os.path.join(os.path.dirname(__file__), "..", "bench",
                                    "baselines")


def load_records(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array of bench records")
    return {r["name"]: r for r in data}


def num(value):
    """JSON number or None (null and non-finite values don't gate)."""
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def check_file(produced_path, baseline_path, args, failures, notes):
    produced = load_records(produced_path)
    baseline = load_records(baseline_path)
    name = os.path.basename(produced_path)

    for key, base in baseline.items():
        if key not in produced:
            failures.append(f"{name}: record '{key}' vanished "
                            f"(present in baseline, missing from produced)")
            continue
        got = produced[key]

        base_wall, got_wall = num(base.get("wall_ms")), num(got.get("wall_ms"))
        floor = num(base.get("wall_floor_ms"))
        if floor is None:
            floor = args.wall_floor_ms
        if (base_wall is not None and got_wall is not None
                and base_wall >= floor):
            limit = base_wall * (1.0 + args.wall_tol)
            if got_wall > limit:
                failures.append(
                    f"{name}: '{key}' wall_ms {got_wall:.1f} exceeds "
                    f"{limit:.1f} (baseline {base_wall:.1f} "
                    f"+{args.wall_tol:.0%})")

        base_speed, got_speed = num(base.get("speedup")), num(got.get("speedup"))
        if base_speed is not None and got_speed is not None:
            floor = base_speed * (1.0 - args.speedup_tol)
            if got_speed < floor:
                failures.append(
                    f"{name}: '{key}' speedup {got_speed:.2f} below "
                    f"{floor:.2f} (baseline {base_speed:.2f} "
                    f"-{args.speedup_tol:.0%})")

        base_peak, got_peak = num(base.get("peak_mb")), num(got.get("peak_mb"))
        if base_peak is not None and got_peak is not None and base_peak > 0:
            ceiling = base_peak * (1.0 + args.peak_tol)
            if got_peak > ceiling:
                failures.append(
                    f"{name}: '{key}' peak_mb {got_peak:.2f} exceeds "
                    f"{ceiling:.2f} (baseline {base_peak:.2f} "
                    f"+{args.peak_tol:.0%})")

        base_state = num(base.get("state_bytes"))
        got_state = num(got.get("state_bytes"))
        if base_state is not None and got_state is not None and base_state > 0:
            ceiling = base_state * (1.0 + args.state_tol)
            if got_state > ceiling:
                failures.append(
                    f"{name}: '{key}' state_bytes {got_state:.0f} exceeds "
                    f"{ceiling:.0f} (baseline {base_state:.0f} "
                    f"+{args.state_tol:.0%})")

    for key in produced:
        if key not in baseline:
            notes.append(f"{name}: new record '{key}' has no baseline "
                         f"(run with --update to adopt it)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="produced BENCH_*.json files")
    parser.add_argument("--baseline-dir", default=DEFAULT_BASELINE_DIR)
    parser.add_argument("--wall-tol", type=float,
                        default=float(os.environ.get("BENCH_WALL_TOL", 0.25)),
                        help="allowed relative wall_ms increase (default 0.25)")
    parser.add_argument("--speedup-tol", type=float, default=0.20,
                        help="allowed relative speedup decrease (default 0.20)")
    parser.add_argument("--peak-tol", type=float, default=0.25,
                        help="allowed relative peak_mb increase (default 0.25)")
    parser.add_argument("--state-tol", type=float, default=0.10,
                        help="allowed relative state_bytes increase "
                             "(default 0.10; encoded sizes are deterministic)")
    parser.add_argument("--wall-floor-ms", type=float, default=5.0,
                        help="skip wall comparison below this baseline wall "
                             "(timer noise; default 5 ms); a baseline "
                             "record's own wall_floor_ms overrides this")
    parser.add_argument("--update", action="store_true",
                        help="copy produced files into the baseline dir "
                             "instead of gating")
    args = parser.parse_args()

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in args.files:
            dest = os.path.join(args.baseline_dir, os.path.basename(path))
            shutil.copyfile(path, dest)
            print(f"baseline refreshed: {dest}")
        return 0

    failures, notes = [], []
    for path in args.files:
        baseline_path = os.path.join(args.baseline_dir, os.path.basename(path))
        if not os.path.exists(baseline_path):
            notes.append(f"{os.path.basename(path)}: no committed baseline "
                         f"(run with --update to adopt it)")
            continue
        check_file(path, baseline_path, args, failures, notes)

    for note in notes:
        print(f"note: {note}")
    if failures:
        print(f"\n{len(failures)} perf regression(s) against "
              f"{os.path.normpath(args.baseline_dir)}:")
        for failure in failures:
            print(f"  FAIL {failure}")
        print("\nIf the change is intentional (new workload, retuned bench), "
              "refresh with: tools/check_bench.py --update <files>")
        return 1
    print(f"perf gate passed: {len(args.files)} file(s) within tolerance "
          f"(wall +{args.wall_tol:.0%}, speedup -{args.speedup_tol:.0%}, "
          f"peak +{args.peak_tol:.0%}, state +{args.state_tol:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
