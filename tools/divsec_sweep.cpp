// divsec_sweep — distributed scenario sweeps from the command line.
//
// A sweep is named by its spec (preset, policy arms, threat, seed,
// replication/aggregation parameters); every process re-expands the
// identical plan from the scenario registry, so shards ship no topology
// bytes — only accumulator state. The three subcommands:
//
//   run     in-process sweep (no --shard): writes <out>_measurements.csv
//           and <out>_summary.json — the single-process reference.
//           With --shard i/K: computes shard i's superblock-task
//           partials and writes the versioned state file <out> (default
//           <preset>_shard<i>of<K>.state). With --tasks PLAN --shard i:
//           computes the explicit task list shard i owns in a
//           cost-weighted plan file instead of the contiguous range.
//   plan    cost-weighted shard planner: merges the per-cell cost models
//           measured by prior runs (--weights *.state, any compatible
//           sweep — cost transfers across replication counts) and deals
//           the superblock tasks to --shards K by LPT, writing a task
//           plan `run --tasks` executes. Every shard state records
//           costs, so the first (statically sharded) run of a sweep is
//           its own calibration.
//   merge   exact cross-process reducer: validates shard compatibility
//           and exact task coverage (contiguous ranges, LPT lists, or
//           any mix), folds partials in ascending (cell, superblock)
//           order, and writes <out>_measurements.csv +
//           <out>_summary.json + <out>_merged.state. Output is
//           bit-identical to the in-process `run` on the same spec —
//           for any shard count, including 1, and for any exact-coverage
//           assignment of tasks to shards.
//   adapt   variance-driven coordinator (dist/adaptive.h): multi-round
//           loop that re-deals only the unconverged cells' next
//           superblocks each round (LPT over the cost measured so far)
//           and retires a cell once its CI half-width passes the
//           stopping rule. Writes the merged artifacts plus
//           <out>_adaptive.state, whose per-cell achieved counts are the
//           reproducibility contract.
//           With --replay STATE, `run` re-executes exactly the recorded
//           achieved counts — any thread count, any --shard i/K cut —
//           and merging reproduces the adaptive CSV byte for byte.
//   inspect print a state file's JSON header, its per-section byte
//           breakdown (framing, meta, tasks, accumulators, cost, rounds)
//           with the compression ratio against the fixed-width
//           equivalent, per-cell summary lines (achieved replications,
//           measured sec/rep, termination round for adaptive states),
//           the adaptive round log, and the accumulator dump.
//
// Examples (long invocations wrapped for reading):
//   divsec_sweep run --preset enterprise1024 --replications 100000
//       --shard 0/8 --out s0.state            # ×8, one per process/host
//   divsec_sweep merge --out fleet s*.state
//   divsec_sweep plan --preset enterprise1024 --replications 100000
//       --shards 8 --weights fleet_merged.state --out fleet.tasks
//   divsec_sweep run --preset enterprise1024 --replications 100000
//       --tasks fleet.tasks --shard 0 --out e0.state   # ×8, elastic
//   divsec_sweep run --preset enterprise1024 --replications 100000
//       --out fleet_ref                       # the equality reference
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "attack/threat.h"
#include "core/report.h"
#include "dist/adaptive.h"
#include "dist/sweep.h"
#include "scenario/presets.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "sim/executor.h"
#include "util/json.h"
#include "util/version.h"

using namespace divsec;

namespace {

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: divsec_sweep <run|plan|merge|adapt|inspect> [options]\n"
      "\n"
      "divsec_sweep run [sweep options] [--shard i/K | --tasks PLAN --shard i\n"
      "                 | --replay STATE [--shard i/K]] [--out PATH]\n"
      "  --preset NAME        scenario preset or family spec (default\n"
      "                       enterprise256)\n"
      "  --family SPEC        topology family spec, e.g. brownfield or\n"
      "                       hub-spoke:nodes=512,sites=8 (families:\n"
      "                       purdue-deep, mesh-flat, hub-spoke,\n"
      "                       brownfield); sets the preset to the\n"
      "                       canonical familyv1 form\n"
      "  --family-json ARG    same, from a flat JSON object — inline if\n"
      "                       ARG starts with '{', else a file path\n"
      "  --policies a,b,c     cell arms from {monoculture,zone-stratified,\n"
      "                       random-per-node,balanced-rotation} (aliases\n"
      "                       mono/zone/random/rotation; default the\n"
      "                       three-arm policy sweep)\n"
      "  --threat SPEC        threat spec: stuxnet|duqu|flame, optionally\n"
      "                       tuned — stuxnet:scan=2,dwell=0.5,\n"
      "                       stealth=0.8,channels=usb+http\n"
      "                       (default stuxnet)\n"
      "  --seed S             master seed (default 2013)\n"
      "  --replications N     replications per cell (default 1000)\n"
      "  --block B            replications per reduction block (default %zu)\n"
      "  --superblock SB      replications per distributable superblock\n"
      "                       (multiple of the block; default %zu)\n"
      "  --bins N             survival-estimator bins (default 64)\n"
      "  --horizon H          measurement horizon in hours (default 2160)\n"
      "  --threads T          executor threads (default DIVSEC_THREADS)\n"
      "  --shard i/K          compute only shard i of K (contiguous\n"
      "                       balanced ranges) and write its state file\n"
      "  --tasks PLAN         execute the task list --shard i owns in the\n"
      "                       plan file (from `divsec_sweep plan`); the\n"
      "                       plan's fingerprint must match the sweep flags\n"
      "  --replay STATE       re-execute the per-cell achieved counts an\n"
      "                       adaptive state recorded (sweep flags come\n"
      "                       from the state, not the command line); no\n"
      "                       --shard reproduces the CSV directly, --shard\n"
      "                       i/K writes shard i's slice of the achieved\n"
      "                       task list for a later `merge`\n"
      "  --out PATH           state-file path (sharded) or artifact prefix\n"
      "  --metrics PATH       write the obs:: metrics snapshot as JSON; a\n"
      "                       sharded run writes <out>.metrics.json even\n"
      "                       without the flag (merge aggregates sidecars)\n"
      "  --trace FILE         record obs:: spans and write a Chrome\n"
      "                       trace-event JSON (load in Perfetto)\n"
      "\n"
      "divsec_sweep plan [sweep options] --shards K [--weights STATE]...\n"
      "                  [--out PATH]\n"
      "  deals the sweep's superblock tasks to K shards by LPT over the\n"
      "  per-cell costs measured in the --weights state files (shard or\n"
      "  merged; replication counts may differ — cost is per replication).\n"
      "  Without --weights all tasks cost the same (balanced deal). Writes\n"
      "  the task plan to PATH (default <preset>_<K>shards.tasks)\n"
      "\n"
      "divsec_sweep merge [--out PREFIX] [--bench-json FILE]\n"
      "                   [--metrics PATH] STATE...\n"
      "  reduces shard state files to <PREFIX>_measurements.csv,\n"
      "  <PREFIX>_summary.json and <PREFIX>_merged.state; --bench-json\n"
      "  records per-shard wall times in BENCH json format. Aggregates the\n"
      "  inputs' <STATE>.metrics.json sidecars (plus this process's own\n"
      "  codec counters) into <PREFIX>_merged.state.metrics.json, or\n"
      "  --metrics PATH\n"
      "\n"
      "divsec_sweep adapt [sweep options] [--shards K] [--threads T]\n"
      "                   [--out PREFIX]\n"
      "  variance-driven sweep: rounds of one superblock per unconverged\n"
      "  cell, dealt to K in-process shards by LPT over measured cost,\n"
      "  until every cell's CI half-width meets the stopping rule or hits\n"
      "  the --replications budget. Writes <PREFIX>_measurements.csv,\n"
      "  <PREFIX>_summary.json and <PREFIX>_adaptive.state\n"
      "  --shards K           coordinator shards per round (default 1)\n"
      "  --precision R        relative CI half-width target (default 0.05;\n"
      "                       0 disables the relative criterion)\n"
      "  --abs-floor A        absolute half-width floor in ratio units\n"
      "                       (scaled by the horizon for time indicators;\n"
      "                       default 0 = off) — a near-zero-mean cell\n"
      "                       converges on this even when R*|mean| ~ 0\n"
      "  --confidence C       CI confidence level (default 0.95)\n"
      "  --min N              replications before a cell may stop\n"
      "                       (default: one superblock)\n"
      "  --max N              per-cell cap (default: --replications)\n"
      "  --round N            replications added per round per cell\n"
      "                       (default: one superblock)\n"
      "  --metrics PATH       write the obs:: metrics snapshot as JSON\n"
      "  --trace FILE         record obs:: spans (adapt.round/shard/merge)\n"
      "                       and write Chrome trace-event JSON\n"
      "  (a per-round convergence line always goes to stderr; silence it\n"
      "  with DIVSEC_PROGRESS=0)\n"
      "\n"
      "divsec_sweep inspect [STATE] [--metrics FILE]\n"
      "  prints the JSON header, the per-section byte breakdown with the\n"
      "  compression ratio vs. the fixed-width equivalent, per-cell\n"
      "  summaries, the adaptive round log, and the accumulator dump.\n"
      "  --metrics FILE (or an existing <STATE>.metrics.json sidecar)\n"
      "  pretty-prints the metrics catalog: counters, gauges, and\n"
      "  histogram count/mean/p50/p99\n"
      "\n"
      "divsec_sweep --help | --version\n",
      sim::kDefaultReductionBlock, sim::kDefaultSuperblockReps);
}

[[noreturn]] void die_unknown(const std::string& flag) {
  std::fprintf(stderr, "divsec_sweep: unknown flag: %s\n", flag.c_str());
  usage(stderr);
  std::exit(2);
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "divsec_sweep: %s\n", message.c_str());
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

scenario::VariantPolicy parse_policy(const std::string& name) {
  if (name == "monoculture" || name == "mono")
    return scenario::VariantPolicy::kMonoculture;
  if (name == "zone-stratified" || name == "zone")
    return scenario::VariantPolicy::kZoneStratified;
  if (name == "random-per-node" || name == "random")
    return scenario::VariantPolicy::kRandomPerNode;
  if (name == "balanced-rotation" || name == "rotation")
    return scenario::VariantPolicy::kBalancedRotation;
  die("unknown policy: " + name +
      " (policies: monoculture, zone-stratified, random-per-node, "
      "balanced-rotation)");
}

std::uint64_t parse_u64(const std::string& flag, const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0')
    die("bad number for " + flag + ": " + value);
  return v;
}

double parse_f64(const std::string& flag, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0')
    die("bad number for " + flag + ": " + value);
  return v;
}

/// "i/K" with i < K.
std::pair<std::size_t, std::size_t> parse_shard(const std::string& value) {
  const std::size_t slash = value.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= value.size())
    die("--shard wants i/K, e.g. 0/4; got: " + value);
  const std::uint64_t i = parse_u64("--shard", value.substr(0, slash));
  const std::uint64_t k = parse_u64("--shard", value.substr(slash + 1));
  if (k == 0 || i >= k) die("--shard wants i < K; got: " + value);
  return {static_cast<std::size_t>(i), static_cast<std::size_t>(k)};
}

/// RAII around --trace FILE: spans record between construction and the
/// command's (possibly early) return, then flush as Chrome trace-event
/// JSON. A write failure warns instead of throwing (we are unwinding).
struct TraceGuard {
  std::string path;

  explicit TraceGuard(std::string p) : path(std::move(p)) {
    if (!path.empty()) obs::trace_start();
  }
  ~TraceGuard() {
    if (path.empty()) return;
    try {
      obs::trace_stop(path);
      obs::progress_line("trace -> %s", path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "divsec_sweep: trace write failed: %s\n", e.what());
    }
  }
  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;
};

/// Flush the process's metrics snapshot as a sidecar. Out-of-band by
/// construction: written after the CSV/state artifacts, read by nothing
/// in the measurement pipeline.
void write_metrics_sidecar(const std::string& path) {
  obs::write_metrics_file(path, obs::snapshot());
  obs::progress_line("metrics -> %s", path.c_str());
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f) std::fclose(f);
  return f != nullptr;
}

std::string read_text_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) die("cannot open: " + path);
  std::string bytes;
  char buf[1 << 12];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

/// Canonicalize --preset/--threat up front so a typo dies with the
/// registry listing and exit code 2 (a usage error), not an unhandled
/// exception bubbling out of plan expansion as exit 1.
void resolve_spec(dist::SweepSpec& spec) {
  try {
    spec.preset = scenario::resolve_preset_name(spec.preset);
    spec.threat = attack::canonical_threat_spec(spec.threat);
  } catch (const std::exception& e) {
    die(e.what());
  }
}

struct ArgReader {
  int argc;
  char** argv;
  int i;

  [[nodiscard]] std::string value(const std::string& flag) {
    if (i + 1 >= argc) die("missing value for " + flag);
    return argv[++i];
  }
};

/// The sweep-identity flags shared by `run` and `plan`. Returns false if
/// `flag` is not a sweep flag (the caller handles its own).
bool parse_sweep_flag(ArgReader& args, const std::string& flag,
                      dist::SweepSpec& spec) {
  if (flag == "--preset") spec.preset = args.value(flag);
  else if (flag == "--family") {
    try {
      spec.preset = scenario::FamilySpec::parse(args.value(flag)).canonical();
    } catch (const std::exception& e) {
      die(e.what());
    }
  } else if (flag == "--family-json") {
    const std::string arg = args.value(flag);
    const std::string text =
        !arg.empty() && arg[0] == '{' ? arg : read_text_file(arg);
    try {
      spec.preset = scenario::FamilySpec::from_json(text).canonical();
    } catch (const std::exception& e) {
      die(e.what());
    }
  } else if (flag == "--policies") {
    spec.policies.clear();
    for (const auto& p : split_csv(args.value(flag)))
      spec.policies.push_back(parse_policy(p));
  } else if (flag == "--threat") spec.threat = args.value(flag);
  else if (flag == "--seed") spec.seed = parse_u64(flag, args.value(flag));
  else if (flag == "--replications")
    spec.replications = parse_u64(flag, args.value(flag));
  else if (flag == "--block")
    spec.replication_block = parse_u64(flag, args.value(flag));
  else if (flag == "--superblock")
    spec.superblock = parse_u64(flag, args.value(flag));
  else if (flag == "--bins")
    spec.survival_bins = parse_u64(flag, args.value(flag));
  else if (flag == "--horizon")
    spec.horizon_hours = parse_f64(flag, args.value(flag));
  else return false;
  return true;
}

int cmd_run(int argc, char** argv) {
  dist::SweepSpec spec;
  bool sharded = false;
  std::string shard_value;
  std::size_t threads = 0;
  std::string out;
  std::string tasks_path;
  std::string replay_path;
  std::string metrics_path;
  std::string trace_path;

  ArgReader args{argc, argv, 2};
  for (; args.i < argc; ++args.i) {
    const std::string flag = argv[args.i];
    if (parse_sweep_flag(args, flag, spec)) continue;
    else if (flag == "--threads")
      threads = parse_u64(flag, args.value(flag));
    else if (flag == "--shard") {
      shard_value = args.value(flag);
      sharded = true;
    } else if (flag == "--tasks") tasks_path = args.value(flag);
    else if (flag == "--replay") replay_path = args.value(flag);
    else if (flag == "--out") out = args.value(flag);
    else if (flag == "--metrics") metrics_path = args.value(flag);
    else if (flag == "--trace") trace_path = args.value(flag);
    else die_unknown(flag);
  }
  resolve_spec(spec);

  const TraceGuard trace(trace_path);
  // A state-producing run always flushes its metrics next to the state
  // file (merge aggregates the sidecars); the in-process reference only
  // writes metrics when asked.
  const auto shard_metrics = [&](const std::string& state_path) {
    write_metrics_sidecar(metrics_path.empty() ? state_path + ".metrics.json"
                                               : metrics_path);
  };
  const sim::Executor executor(threads);  // 0 = DIVSEC_THREADS default
  if (!replay_path.empty()) {
    // Replay mode: the state file, not the command line, names the sweep
    // — its meta carries the flags AND the per-cell achieved counts the
    // adaptive run recorded. Re-running exactly those counts through the
    // ordinary task runner reproduces the adaptive CSV byte for byte.
    if (!tasks_path.empty()) die("--replay and --tasks are exclusive");
    const dist::ShardState recorded = dist::read_shard_state(replay_path);
    if (recorded.meta.achieved.empty())
      die("--replay wants an adaptive state (no per-cell achieved counts "
          "in " + replay_path + ")");
    const dist::SweepSpec replay_spec = dist::spec_from_meta(recorded.meta);
    const std::vector<std::uint64_t> tasks =
        dist::achieved_tasks(recorded.meta);

    if (sharded) {
      // Shard i's slice of the achieved task LIST (contiguous balanced
      // over list positions — task ids themselves are non-contiguous
      // because each cell contributes only its prefix).
      const auto [shard, shard_count] = parse_shard(shard_value);
      const std::size_t base = tasks.size() / shard_count;
      const std::size_t rem = tasks.size() % shard_count;
      const std::size_t begin = shard * base + std::min(shard, rem);
      const std::size_t end = begin + base + (shard < rem ? 1 : 0);
      const std::vector<std::uint64_t> slice(tasks.begin() + begin,
                                             tasks.begin() + end);
      if (out.empty())
        out = replay_spec.preset + "_replay_shard" + std::to_string(shard) +
              "of" + std::to_string(shard_count) + ".state";
      const dist::ShardState state = dist::run_shard_tasks(
          replay_spec, slice, shard, shard_count, &executor);
      dist::write_shard_state(out, state);
      shard_metrics(out);
      std::printf("replay shard %zu/%zu: %zu of %zu achieved task(s) of %s "
                  "in %.1f ms -> %s\n",
                  shard, shard_count, state.tasks.size(), tasks.size(),
                  replay_spec.preset.c_str(), state.meta.wall_ms, out.c_str());
      return 0;
    }

    if (out.empty()) out = replay_spec.preset + "_replay";
    const dist::ShardState state =
        dist::run_shard_tasks(replay_spec, tasks, 0, 1, &executor);
    const dist::MergeResult merged = dist::merge_shards({state});
    core::save_to_file(out + "_measurements.csv",
                       dist::sweep_csv(merged.meta, merged.summaries));
    core::save_to_file(out + "_summary.json",
                       dist::summary_json(merged.meta, merged.summaries));
    if (!metrics_path.empty()) write_metrics_sidecar(metrics_path);
    std::printf("replayed %zu achieved task(s) of %s in %.1f ms -> "
                "%s_{measurements.csv,summary.json}\n",
                tasks.size(), replay_spec.preset.c_str(), state.meta.wall_ms,
                out.c_str());
    return 0;
  }

  if (!tasks_path.empty()) {
    // Elastic mode: execute the task list shard i owns in the plan file.
    if (!sharded)
      die("run --tasks wants --shard i (which task list to execute)");
    if (shard_value.find('/') != std::string::npos)
      die("with --tasks, --shard wants a bare index i (K comes from the "
          "plan file); got: " + shard_value);
    const std::size_t shard =
        static_cast<std::size_t>(parse_u64("--shard", shard_value));
    const dist::TaskPlan plan = dist::read_task_plan(tasks_path);
    // The PR-4 fingerprint rule, reused: a task assignment is only valid
    // for the exact sweep it was planned for — running it against other
    // flags would silently mis-cover the task space.
    dist::require_fingerprint(dist::sweep_fingerprint(dist::make_meta(spec)),
                              plan.fingerprint, "task plan " + tasks_path);
    if (shard >= plan.shards.size())
      die("--shard " + std::to_string(shard) + " out of range: " +
          tasks_path + " plans " + std::to_string(plan.shards.size()) +
          " shard(s)");
    if (out.empty())
      out = spec.preset + "_shard" + std::to_string(shard) + "of" +
            std::to_string(plan.shards.size()) + ".state";
    const dist::ShardState state = dist::run_shard_tasks(
        spec, plan.shards[shard], shard, plan.shards.size(), &executor);
    dist::write_shard_state(out, state);
    shard_metrics(out);
    std::printf("shard %zu/%zu: %zu task(s) of %s (cost-weighted plan %s) "
                "in %.1f ms -> %s\n",
                shard, plan.shards.size(), state.tasks.size(),
                spec.preset.c_str(), tasks_path.c_str(), state.meta.wall_ms,
                out.c_str());
    return 0;
  }

  if (sharded) {
    const auto [shard, shard_count] = parse_shard(shard_value);
    if (out.empty())
      out = spec.preset + "_shard" + std::to_string(shard) + "of" +
            std::to_string(shard_count) + ".state";
    const dist::ShardState state =
        dist::run_shard(spec, shard, shard_count, &executor);
    const unsigned long long lo =
        state.tasks.empty() ? 0 : static_cast<unsigned long long>(state.tasks.front());
    const unsigned long long hi =
        state.tasks.empty() ? 0 : static_cast<unsigned long long>(state.tasks.back()) + 1;
    dist::write_shard_state(out, state);
    shard_metrics(out);
    std::printf("shard %zu/%zu: tasks [%llu, %llu) of %s in %.1f ms -> %s\n",
                shard, shard_count, lo, hi, spec.preset.c_str(),
                state.meta.wall_ms, out.c_str());
    return 0;
  }

  if (out.empty()) out = spec.preset;
  dist::SweepMeta meta = dist::make_meta(spec);
  meta.threads = static_cast<std::uint32_t>(executor.thread_count());
  const std::vector<core::IndicatorSummary> summaries =
      dist::run_in_process(spec, &executor);
  core::save_to_file(out + "_measurements.csv",
                     dist::sweep_csv(meta, summaries));
  core::save_to_file(out + "_summary.json",
                     dist::summary_json(meta, summaries));
  if (!metrics_path.empty()) write_metrics_sidecar(metrics_path);
  std::printf("in-process sweep of %s (%llu cells x %llu reps) -> "
              "%s_{measurements.csv,summary.json}\n",
              spec.preset.c_str(), static_cast<unsigned long long>(meta.cells),
              static_cast<unsigned long long>(meta.replications), out.c_str());
  return 0;
}

int cmd_plan(int argc, char** argv) {
  dist::SweepSpec spec;
  std::size_t shards = 0;
  std::vector<std::string> weights;
  std::string out;

  ArgReader args{argc, argv, 2};
  for (; args.i < argc; ++args.i) {
    const std::string flag = argv[args.i];
    if (parse_sweep_flag(args, flag, spec)) continue;
    else if (flag == "--shards")
      shards = parse_u64(flag, args.value(flag));
    else if (flag == "--weights") weights.push_back(args.value(flag));
    else if (flag == "--out") out = args.value(flag);
    else die_unknown(flag);
  }
  if (shards == 0) die("plan wants --shards K (K >= 1)");
  resolve_spec(spec);

  const dist::SweepMeta meta = dist::make_meta(spec);
  dist::CostModel cost;
  for (const auto& path : weights) {
    const dist::ShardState state = dist::read_shard_state(path);
    // Weights only need cost-compatibility (same cells, same dynamics):
    // seconds/rep is independent of replication counts and aggregation
    // sizes, so a cheap calibration run can weight a full-scale plan.
    dist::require_fingerprint(dist::cost_fingerprint(meta),
                              dist::cost_fingerprint(state.meta),
                              "weights file " + path);
    cost.merge(state.cost);
  }

  const sim::ShardPlan task_space = dist::sweep_shard_plan(meta);
  dist::TaskPlan plan;
  plan.fingerprint = dist::sweep_fingerprint(meta);
  plan.shards = dist::cost_weighted_assignment(task_space, cost, shards);
  if (out.empty())
    out = spec.preset + "_" + std::to_string(shards) + "shards.tasks";
  dist::write_task_plan(out, plan);

  const std::vector<double> estimate =
      dist::assignment_cost(task_space, cost, plan.shards);
  const bool weighted = cost.measured();
  std::printf("%s plan over %zu task(s) (%s costs) -> %s\n",
              weighted ? "cost-weighted LPT" : "balanced",
              static_cast<std::size_t>(task_space.task_count()),
              weighted ? "measured" : "uniform", out.c_str());
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    if (weighted)
      std::printf("  shard %zu: %4zu task(s)  ~%.2f s predicted\n", s,
                  plan.shards[s].size(), estimate[s]);
    else
      std::printf("  shard %zu: %4zu task(s)\n", s, plan.shards[s].size());
  }
  return 0;
}

int cmd_merge(int argc, char** argv) {
  std::string out = "merged";
  std::string bench_json;
  std::string metrics_path;
  std::vector<std::string> inputs;

  ArgReader args{argc, argv, 2};
  for (; args.i < argc; ++args.i) {
    const std::string flag = argv[args.i];
    if (flag == "--out") out = args.value(flag);
    else if (flag == "--bench-json") bench_json = args.value(flag);
    else if (flag == "--metrics") metrics_path = args.value(flag);
    else if (flag.size() >= 2 && flag[0] == '-' && flag[1] == '-')
      die_unknown(flag);
    else inputs.push_back(flag);
  }
  if (inputs.empty()) die("merge wants at least one state file");

  std::vector<dist::ShardState> states;
  states.reserve(inputs.size());
  for (const auto& path : inputs)
    states.push_back(dist::read_shard_state(path));

  const auto t0 = std::chrono::steady_clock::now();
  const dist::MergeResult merged = dist::merge_shards(states);
  const double merge_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

  core::save_to_file(out + "_measurements.csv",
                     dist::sweep_csv(merged.meta, merged.summaries));
  core::save_to_file(out + "_summary.json",
                     dist::summary_json(merged.meta, merged.summaries));
  dist::write_shard_state(out + "_merged.state", dist::merged_state(merged));

  // Aggregate the shards' metrics sidecars (counters sum, gauges max)
  // plus this process's own snapshot — the codec decode/encode counters
  // of the reduction itself — into one fleet-wide catalog.
  {
    obs::Snapshot fleet;
    std::size_t sidecars = 0;
    for (const auto& path : inputs) {
      const std::string sidecar = path + ".metrics.json";
      if (!file_exists(sidecar)) continue;
      obs::merge_into(fleet, obs::read_metrics_file(sidecar));
      ++sidecars;
    }
    if (sidecars > 0 || !metrics_path.empty()) {
      obs::merge_into(fleet, obs::snapshot());
      const std::string dest = metrics_path.empty()
                                   ? out + "_merged.state.metrics.json"
                                   : metrics_path;
      obs::write_metrics_file(dest, fleet);
      obs::progress_line("aggregated %zu metrics sidecar(s) -> %s", sidecars,
                         dest.c_str());
    }
  }

  if (!bench_json.empty()) {
    // Per-shard wall times plus the reduction itself: the distributed
    // speedup record CI tracks across commits. `speedup` on the merge row
    // is sum(shard walls) / (critical path = slowest shard + merge).
    std::vector<util::BenchRecord> records;
    double total_ms = 0.0, slowest_ms = 0.0;
    for (const auto& s : states) {
      util::BenchRecord r;
      r.name = "divsec_sweep/" + s.meta.preset + "/shard" +
               std::to_string(s.meta.shard) + "of" +
               std::to_string(s.meta.shard_count);
      r.wall_ms = s.meta.wall_ms;
      r.threads = static_cast<int>(s.meta.threads);
      records.push_back(r);
      total_ms += s.meta.wall_ms;
      slowest_ms = std::max(slowest_ms, s.meta.wall_ms);
    }
    util::BenchRecord m;
    m.name = "divsec_sweep/" + merged.meta.preset + "/merge";
    m.wall_ms = merge_ms;
    m.threads = 1;
    if (slowest_ms + merge_ms > 0.0)
      m.speedup = total_ms / (slowest_ms + merge_ms);
    records.push_back(m);
    util::write_bench_json(bench_json, records);
  }

  std::size_t tasks = 0;
  for (const auto& s : states) tasks += s.partials.size();
  std::printf("merged %zu shard state(s): %zu tasks -> %llu cells in "
              "%.1f ms -> %s_{measurements.csv,summary.json,merged.state}\n",
              states.size(), tasks,
              static_cast<unsigned long long>(merged.meta.cells), merge_ms,
              out.c_str());
  return 0;
}

int cmd_adapt(int argc, char** argv) {
  dist::SweepSpec spec;
  dist::AdaptiveSweepOptions options;
  std::size_t threads = 0;
  std::string out;
  std::string metrics_path;
  std::string trace_path;

  ArgReader args{argc, argv, 2};
  for (; args.i < argc; ++args.i) {
    const std::string flag = argv[args.i];
    if (parse_sweep_flag(args, flag, spec)) continue;
    else if (flag == "--shards")
      options.shards = parse_u64(flag, args.value(flag));
    else if (flag == "--precision")
      options.relative_precision = parse_f64(flag, args.value(flag));
    else if (flag == "--abs-floor")
      options.absolute_precision = parse_f64(flag, args.value(flag));
    else if (flag == "--confidence")
      options.confidence_level = parse_f64(flag, args.value(flag));
    else if (flag == "--min")
      options.min_replications = parse_u64(flag, args.value(flag));
    else if (flag == "--max")
      options.max_replications = parse_u64(flag, args.value(flag));
    else if (flag == "--round")
      options.round_replications = parse_u64(flag, args.value(flag));
    else if (flag == "--threads")
      threads = parse_u64(flag, args.value(flag));
    else if (flag == "--out") out = args.value(flag);
    else if (flag == "--metrics") metrics_path = args.value(flag);
    else if (flag == "--trace") trace_path = args.value(flag);
    else die_unknown(flag);
  }
  if (options.shards == 0) die("adapt wants --shards K >= 1");
  resolve_spec(spec);
  if (out.empty()) out = spec.preset;

  const TraceGuard trace(trace_path);
  const sim::Executor executor(threads);
  const dist::AdaptiveResult result =
      dist::run_adaptive(spec, options, &executor);

  core::save_to_file(out + "_measurements.csv",
                     dist::sweep_csv(result.meta, result.summaries));
  core::save_to_file(out + "_summary.json",
                     dist::summary_json(result.meta, result.summaries));
  dist::write_shard_state(out + "_adaptive.state",
                          dist::adaptive_state(result));
  if (!metrics_path.empty()) write_metrics_sidecar(metrics_path);

  const double savings =
      result.total_replications > 0
          ? static_cast<double>(result.budget_replications) /
                static_cast<double>(result.total_replications)
          : 0.0;
  std::printf("adaptive sweep of %s: %zu round(s), %llu of %llu budget "
              "replication(s) (%.2fx saved) across %zu shard(s) in %.1f ms "
              "-> %s_{measurements.csv,summary.json,adaptive.state}\n",
              spec.preset.c_str(), result.rounds.size(),
              static_cast<unsigned long long>(result.total_replications),
              static_cast<unsigned long long>(result.budget_replications),
              savings, options.shards, result.meta.wall_ms, out.c_str());
  for (std::size_t c = 0; c < result.meta.cells; ++c)
    std::printf("  cell %zu: %llu rep(s), stopped round %llu\n", c,
                static_cast<unsigned long long>(result.meta.achieved[c]),
                static_cast<unsigned long long>(result.cell_rounds[c]));
  return 0;
}

/// One JSON line per metric, sorted by name (sidecar order). Histograms
/// get count/sum plus the triage stats (mean, p50, p99 — log2-bucket
/// upper edges, exact within a factor of two).
void print_metrics_catalog(const std::string& metrics_path) {
  const obs::Snapshot snap = obs::read_metrics_file(metrics_path);
  std::printf("{\"metrics_file\": %s, \"counters\": %zu, \"gauges\": %zu, "
              "\"histograms\": %zu}\n",
              util::json_string(metrics_path).c_str(), snap.counters.size(),
              snap.gauges.size(), snap.histograms.size());
  for (const obs::CounterValue& c : snap.counters)
    std::printf("{\"counter\": %s, \"value\": %llu}\n",
                util::json_string(c.name).c_str(),
                static_cast<unsigned long long>(c.value));
  for (const obs::GaugeValue& g : snap.gauges)
    std::printf("{\"gauge\": %s, \"value\": %llu}\n",
                util::json_string(g.name).c_str(),
                static_cast<unsigned long long>(g.value));
  for (const obs::HistogramValue& h : snap.histograms)
    std::printf("{\"histogram\": %s, \"count\": %llu, \"sum\": %llu, "
                "\"mean\": %s, \"p50\": %s, \"p99\": %s}\n",
                util::json_string(h.name).c_str(),
                static_cast<unsigned long long>(h.count),
                static_cast<unsigned long long>(h.sum),
                util::json_number_exact(h.mean()).c_str(),
                util::json_number_exact(h.quantile(0.5)).c_str(),
                util::json_number_exact(h.quantile(0.99)).c_str());
}

int cmd_inspect(int argc, char** argv) {
  std::string path;
  std::string metrics_path;
  ArgReader args{argc, argv, 2};
  for (; args.i < argc; ++args.i) {
    const std::string flag = argv[args.i];
    if (flag == "--metrics") metrics_path = args.value(flag);
    else if (flag.size() >= 2 && flag[0] == '-' && flag[1] == '-')
      die_unknown(flag);
    else if (!path.empty()) die("inspect wants at most one state file");
    else path = flag;
  }
  if (path.empty() && metrics_path.empty())
    die("inspect wants a state file and/or --metrics FILE");
  // A state file's own sidecar rides along without being asked for.
  if (metrics_path.empty() && file_exists(path + ".metrics.json"))
    metrics_path = path + ".metrics.json";
  if (path.empty()) {
    print_metrics_catalog(metrics_path);
    return 0;
  }

  std::string bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) die("cannot open: " + path);
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    std::fclose(f);
  }
  const dist::ShardState state = dist::decode_shard_state(bytes);
  std::printf("%s\n", dist::meta_json(state.meta).c_str());

  // Where the bytes went, and what the v4 packing bought over the
  // fixed-width encoding of the same content — the CLI view of the
  // codec-size contract the bench_e5 codec phase gates in CI.
  const dist::StateSectionSizes sizes = dist::state_section_sizes(bytes);
  const std::size_t equivalent = dist::uncompressed_equivalent_bytes(state);
  std::printf(
      "{\"sections\": {\"header\": %zu, \"meta\": %zu, \"tasks\": %zu, "
      "\"accumulators\": %zu, \"cost\": %zu, \"rounds\": %zu, "
      "\"checksum\": %zu}, \"total_bytes\": %zu, "
      "\"uncompressed_equivalent_bytes\": %zu, "
      "\"compression_ratio\": %.2f}\n",
      sizes.header, sizes.meta, sizes.tasks, sizes.accumulators, sizes.cost,
      sizes.rounds, sizes.checksum, sizes.total(), equivalent,
      static_cast<double>(equivalent) / static_cast<double>(sizes.total()));

  // One line per cell: the policy arm, the achieved replication count an
  // adaptive run recorded (and the round it stopped in), and the measured
  // cost. Cells with nothing to report (fixed-budget state, no cost
  // measured) are skipped.
  const std::vector<std::string> names =
      dist::cell_names(dist::spec_from_meta(state.meta));
  const bool adaptive = !state.meta.achieved.empty();
  for (std::size_t c = 0; c < state.meta.cells; ++c) {
    const bool costed =
        c < state.cost.cells.size() && state.cost.cells[c].replications > 0;
    if (!adaptive && !costed) continue;
    std::string line = "{\"cell\": " + std::to_string(c) + ", \"policy\": \"" +
                       names[c] + "\"";
    if (adaptive) {
      line += ", \"achieved\": " +
              std::to_string(static_cast<unsigned long long>(
                  state.meta.achieved[c]));
      if (c < state.cell_rounds.size())
        line += ", \"termination_round\": " +
                std::to_string(static_cast<unsigned long long>(
                    state.cell_rounds[c]));
    }
    if (costed) {
      const dist::CellCost& cell = state.cost.cells[c];
      line += ", \"cost_replications\": " +
              std::to_string(static_cast<unsigned long long>(
                  cell.replications)) +
              ", \"cost_seconds\": " + util::json_number_exact(cell.seconds) +
              ", \"sec_per_rep\": " +
              util::json_number_exact(state.cost.sec_per_rep(c));
    }
    line += "}";
    std::printf("%s\n", line.c_str());
  }

  for (const dist::RoundLog& r : state.rounds)
    std::printf("{\"round\": %llu, \"active_cells\": %llu, \"tasks\": %llu, "
                "\"replications\": %llu, \"wall_ms\": %s, \"merge_ms\": %s}\n",
                static_cast<unsigned long long>(r.round),
                static_cast<unsigned long long>(r.active_cells),
                static_cast<unsigned long long>(r.tasks),
                static_cast<unsigned long long>(r.replications),
                util::json_number_exact(r.wall_ms).c_str(),
                util::json_number_exact(r.merge_ms).c_str());

  for (std::size_t t = 0; t < state.partials.size(); ++t)
    std::printf("{\"task\": %llu, \"state\": %s}\n",
                static_cast<unsigned long long>(state.tasks[t]),
                dist::accumulator_json(state.partials[t]).c_str());

  if (!metrics_path.empty()) print_metrics_catalog(metrics_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    usage(stdout);
    return 0;
  }
  if (cmd == "--version") {
    std::printf("divsec_sweep %s (state format v%u)\n", util::kVersion,
                dist::kStateFormatVersion);
    return 0;
  }
  try {
    if (cmd == "run") return cmd_run(argc, argv);
    if (cmd == "plan") return cmd_plan(argc, argv);
    if (cmd == "merge") return cmd_merge(argc, argv);
    if (cmd == "adapt") return cmd_adapt(argc, argv);
    if (cmd == "inspect") return cmd_inspect(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "divsec_sweep: error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "divsec_sweep: unknown command: %s\n", cmd.c_str());
  usage(stderr);
  return 2;
}
